"""E4 — Table VII: CPU-only edge-device inference time vs input length.

The paper deploys the vanilla Transformer and LiPFormer on a CPU-only edge
box and measures seconds per inference for input lengths 96/192/336/720 on
ETTh1 (7 channels) and Weather (21 channels).  The headline result is that
LiPFormer's inference cost grows far more slowly with the input length.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..baselines import create_model
from ..data.datasets import DATASET_SPECS
from ..profiling import edge_inference_profile
from ..training import ResultsTable
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "DEFAULT_INPUT_LENGTHS", "DEFAULT_MODELS", "run_table7", "main"]

DEFAULT_DATASETS = ("ETTh1", "Weather")
DEFAULT_INPUT_LENGTHS = (96, 192, 336, 720)
DEFAULT_MODELS = ("Transformer", "LiPFormer")


def run_table7(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    input_lengths: Optional[Sequence[int]] = None,
    models: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    n_threads: Optional[int] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate Table VII: per-inference seconds on a CPU-only device."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    input_lengths = tuple(input_lengths) if input_lengths else DEFAULT_INPUT_LENGTHS
    models = tuple(models) if models else DEFAULT_MODELS
    horizon = horizon if horizon is not None else profile.horizons[0]
    table = ResultsTable(title="Table VII — CPU-only inference time by input length")
    rng = np.random.default_rng(seed or profile.seed)
    for dataset in datasets:
        n_channels = DATASET_SPECS[dataset].n_channels
        if profile.channel_cap:
            n_channels = min(n_channels, profile.channel_cap)
        base_config = profile.model_config(n_channels=n_channels, horizon=horizon)
        for model_name in models:
            timings = edge_inference_profile(
                model_factory=lambda config, name=model_name: create_model(name, config),
                base_config=base_config,
                input_lengths=input_lengths,
                batch_size=1,
                n_threads=n_threads,
                rng=rng,
            )
            row = {"dataset": dataset, "model": model_name}
            for length, seconds in timings.items():
                row[f"T={length}"] = seconds
            table.add_row(**row)
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table7().to_text(float_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
