"""E9 — Table XII: transplanting the Covariate Encoder into other models.

Informer, vanilla Transformer and Autoformer are trained on the
Electricity-Price dataset with and without the pre-trained Covariate
Encoder attached (via :class:`~repro.core.transplant.CovariateEnrichedModel`);
the paper reports a consistent accuracy gain for the enriched versions.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..baselines import create_model
from ..core.transplant import CovariateEnrichedModel
from ..training import ResultsTable
from .common import config_for_data, prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_MODELS", "run_table12", "main"]

DEFAULT_MODELS = ("Informer", "Transformer", "Autoformer")
DEFAULT_DATASET = "ElectricityPrice"


def run_table12(
    profile: ExperimentProfile = QUICK,
    models: Optional[Sequence[str]] = None,
    dataset: str = DEFAULT_DATASET,
    horizons: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate Table XII: base models with vs without the Covariate Encoder."""
    models = tuple(models) if models else DEFAULT_MODELS
    horizons = tuple(horizons) if horizons else (profile.horizons[0],)
    table = ResultsTable(title="Table XII — Covariate Encoder transplanted onto other models")
    for horizon in horizons:
        data = prepare_profile_data(profile, dataset, horizon, seed=seed)
        config = config_for_data(profile, data)
        for model_name in models:
            rng = np.random.default_rng(seed or profile.seed)
            plain = create_model(model_name, config, rng=rng)
            plain_result = train_model_on(
                model_name, profile, data, model=plain, pretrain=False, seed=seed
            )
            enriched = CovariateEnrichedModel(
                create_model(model_name, config, rng=np.random.default_rng(seed or profile.seed)),
                config,
            )
            enriched_result = train_model_on(
                f"{model_name}+CovariateEncoder",
                profile,
                data,
                model=enriched,
                pretrain=True,
                seed=seed,
            )
            table.add_row(
                model=model_name,
                dataset=dataset,
                horizon=horizon,
                mse_without_encoder=plain_result.mse,
                mae_without_encoder=plain_result.mae,
                mse_with_encoder=enriched_result.mse,
                mae_with_encoder=enriched_result.mae,
                mse_improvement=plain_result.mse - enriched_result.mse,
            )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table12().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
