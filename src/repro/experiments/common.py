"""Shared plumbing for the per-table experiment drivers."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import create_model
from ..config import ModelConfig
from ..core.base import ForecastModel
from ..core.lipformer import LiPFormer
from ..data.pipeline import ForecastingData, prepare_forecasting_data
from ..profiling import measure_macs
from ..training import ExperimentResult, run_experiment
from .profiles import ExperimentProfile

__all__ = [
    "prepare_profile_data",
    "config_for_data",
    "train_model_on",
    "COVARIATE_DATASETS",
]

#: the two datasets that ship explicit future covariates (paper Table IV)
COVARIATE_DATASETS = ("ElectricityPrice", "Cycle")

_DATA_CACHE: Dict[Tuple, ForecastingData] = {}


def prepare_profile_data(
    profile: ExperimentProfile,
    dataset: str,
    horizon: int,
    input_length: Optional[int] = None,
    seed: Optional[int] = None,
    use_cache: bool = True,
) -> ForecastingData:
    """Prepare (and memoise) windowed data for one dataset under a profile."""
    length = input_length if input_length is not None else profile.input_length
    key = (profile.name, dataset, horizon, length, seed or profile.seed)
    if use_cache and key in _DATA_CACHE:
        return _DATA_CACHE[key]
    data = prepare_forecasting_data(
        dataset,
        input_length=length,
        horizon=horizon,
        n_timestamps=profile.n_timestamps,
        n_channels=profile.channel_cap,
        stride=profile.window_stride,
        seed=seed or profile.seed,
        include_covariates=True,
    )
    if use_cache:
        _DATA_CACHE[key] = data
    return data


def config_for_data(
    profile: ExperimentProfile,
    data: ForecastingData,
    input_length: Optional[int] = None,
    patch_length: Optional[int] = None,
    with_covariates: bool = True,
) -> ModelConfig:
    """Derive the model configuration matching a prepared dataset."""
    return profile.model_config(
        n_channels=data.n_channels,
        horizon=data.horizon,
        covariate_numerical_dim=data.covariate_numerical_dim if with_covariates else 0,
        covariate_categorical_cardinalities=(
            data.covariate_categorical_cardinalities if with_covariates else ()
        ),
        input_length=input_length if input_length is not None else data.input_length,
        patch_length=patch_length,
    )


def train_model_on(
    model_name: str,
    profile: ExperimentProfile,
    data: ForecastingData,
    model: Optional[ForecastModel] = None,
    pretrain: Optional[bool] = None,
    patch_length: Optional[int] = None,
    with_macs: bool = False,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Build (or accept) a model, train it on ``data`` and report results.

    LiPFormer is pre-trained contrastively by default; baselines are not,
    matching the paper's protocol.
    """
    config = config_for_data(profile, data, patch_length=patch_length)
    if model is None:
        model = create_model(model_name, config, rng=np.random.default_rng(seed or profile.seed))
    if pretrain is None:
        pretrain = isinstance(model, LiPFormer) and model.use_covariate_guidance
    result = run_experiment(
        model,
        data,
        training_config=profile.training_config(),
        model_name=model_name,
        pretrain=pretrain,
        seed=seed or profile.seed,
    )
    if with_macs:
        result.macs = measure_macs(model, batch_size=min(32, profile.batch_size))
    return result
