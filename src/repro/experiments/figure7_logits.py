"""E11 — Figure 7: visualising the contrastive logits matrices.

After pre-training the dual encoder, the ``[b, b]`` similarity (logits)
matrix between target-sequence embeddings and future-covariate embeddings
should show a bright diagonal on the training data and periodic stripes on
unshuffled validation batches (period = the dataset's daily cycle).  This
driver pre-trains the dual encoder and returns the logits matrices plus
summary statistics that capture those two properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.lipformer import LiPFormer
from ..training import ContrastivePretrainer, ResultsTable
from .common import config_for_data, prepare_profile_data
from .profiles import QUICK, ExperimentProfile

__all__ = ["LogitsResult", "run_figure7", "main"]

DEFAULT_DATASETS = ("ETTm1", "ETTh2", "ElectricityPrice")


@dataclass
class LogitsResult:
    """One logits matrix plus the diagnostics plotted in Figure 7."""

    dataset: str
    split: str
    logits: np.ndarray
    diagonal_mean: float
    off_diagonal_mean: float

    @property
    def diagonal_margin(self) -> float:
        """How much brighter the diagonal is than the rest of the matrix."""
        return self.diagonal_mean - self.off_diagonal_mean


def _matrix_stats(logits: np.ndarray) -> Dict[str, float]:
    diagonal = np.diag(logits)
    mask = ~np.eye(len(logits), dtype=bool)
    return {
        "diagonal_mean": float(diagonal.mean()),
        "off_diagonal_mean": float(logits[mask].mean()),
    }


def run_figure7(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    batch_size: int = 64,
    seed: Optional[int] = None,
) -> tuple[ResultsTable, Dict[str, LogitsResult]]:
    """Pre-train dual encoders and extract the Figure 7 logits matrices."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizon = horizon if horizon is not None else profile.horizons[0]
    table = ResultsTable(title="Figure 7 — contrastive logits diagnostics")
    matrices: Dict[str, LogitsResult] = {}
    for dataset in datasets:
        data = prepare_profile_data(profile, dataset, horizon, seed=seed)
        config = config_for_data(profile, data)
        model = LiPFormer(config, rng=np.random.default_rng(seed or profile.seed))
        dual_encoder = model.build_dual_encoder()
        pretrainer = ContrastivePretrainer(dual_encoder, profile.training_config())
        pretrainer.fit(data)

        for split_name, dataset_split in (("train", data.train), ("validation", data.validation)):
            size = min(batch_size, len(dataset_split))
            batch = dataset_split.as_arrays(np.arange(size))
            logits = dual_encoder.logits_matrix(
                batch["y"], batch["future_numerical"], batch["future_categorical"]
            )
            stats = _matrix_stats(logits)
            result = LogitsResult(
                dataset=dataset,
                split=split_name,
                logits=logits,
                diagonal_mean=stats["diagonal_mean"],
                off_diagonal_mean=stats["off_diagonal_mean"],
            )
            matrices[f"{dataset}/{split_name}"] = result
            table.add_row(
                dataset=dataset,
                split=split_name,
                batch=size,
                diagonal_mean=result.diagonal_mean,
                off_diagonal_mean=result.off_diagonal_mean,
                diagonal_margin=result.diagonal_margin,
            )
    return table, matrices


def main() -> None:  # pragma: no cover - CLI entry point
    table, _ = run_figure7()
    print(table.to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
