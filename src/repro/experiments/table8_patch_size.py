"""E5 — Table VIII: impact of the patch length ``pl``.

The paper sweeps patch lengths {6, 12, 24, 48} over the four ETT datasets
and finds that accuracy is largely insensitive to the choice, crediting the
Cross-Patch mixing for the robustness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..training import ResultsTable
from .common import prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "DEFAULT_PATCH_LENGTHS", "run_table8", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTm2")
DEFAULT_PATCH_LENGTHS = (6, 12, 24, 48)


def run_table8(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    patch_lengths: Optional[Sequence[int]] = None,
    horizon: Optional[int] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table VIII: MSE/MAE for each patch length."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizon = horizon if horizon is not None else profile.horizons[0]
    requested = tuple(patch_lengths) if patch_lengths else DEFAULT_PATCH_LENGTHS
    # Only keep patch lengths that divide the profile's input length.
    patch_lengths = tuple(pl for pl in requested if profile.input_length % pl == 0)
    if not patch_lengths:
        raise ValueError(
            f"none of the patch lengths {requested} divide input_length {profile.input_length}"
        )
    table = ResultsTable(title="Table VIII — impact of patch size")
    for dataset in datasets:
        data = prepare_profile_data(profile, dataset, horizon, seed=seed)
        for patch_length in patch_lengths:
            result = train_model_on(
                "LiPFormer", profile, data, patch_length=patch_length, seed=seed
            )
            table.add_row(
                dataset=dataset,
                horizon=horizon,
                patch_length=patch_length,
                mse=result.mse,
                mae=result.mae,
            )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table8().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
