"""E7 — Table X: ablation of the lightweight architecture (LN / FFN removal).

Adding back Layer Normalization and/or the Transformer feed-forward block is
expected to *hurt* accuracy on time series, validating LiPFormer's decision
to drop both.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.variants import (
    lipformer_full,
    lipformer_with_ffn,
    lipformer_with_ffn_and_layernorm,
    lipformer_with_layernorm,
)
from ..training import ResultsTable
from .common import config_for_data, prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "VARIANTS", "run_table10", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTm2")

VARIANTS = {
    "LiPFormer": lipformer_full,
    "LiPFormer+FFNs": lipformer_with_ffn,
    "LiPFormer+LN": lipformer_with_layernorm,
    "LiPFormer+FFNs+LN": lipformer_with_ffn_and_layernorm,
}


def run_table10(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizons: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table X: +FFNs / +LN ablations."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizons = tuple(horizons) if horizons else (profile.horizons[0],)
    table = ResultsTable(title="Table X — lightweight architecture ablation")
    for dataset in datasets:
        for horizon in horizons:
            data = prepare_profile_data(profile, dataset, horizon, seed=seed)
            config = config_for_data(profile, data)
            for variant_name, factory in VARIANTS.items():
                model = factory(config, rng=np.random.default_rng(seed or profile.seed))
                result = train_model_on(
                    variant_name, profile, data, model=model, pretrain=True, seed=seed
                )
                table.add_row(
                    dataset=dataset,
                    horizon=horizon,
                    variant=variant_name,
                    mse=result.mse,
                    mae=result.mae,
                    parameters=result.parameters,
                )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table10().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
