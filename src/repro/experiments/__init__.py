"""``repro.experiments`` — one driver per paper table / figure (see DESIGN.md)."""

from .efficiency_report import run_efficiency_report
from .figure6_covariate_ablation import run_figure6
from .figure7_logits import LogitsResult, run_figure7
from .profiles import PAPER, QUICK, SMOKE, ExperimentProfile, get_profile
from .table3_multivariate import run_table3, summarize_winners
from .table5_univariate import run_table5
from .table6_pretraining import run_table6
from .table7_edge_inference import run_table7
from .table8_patch_size import run_table8
from .table9_input_length import run_table9
from .table10_lightweight_ablation import run_table10
from .table11_attention_ablation import run_table11
from .table12_transplant import run_table12
from .run_all import EXPERIMENT_RUNNERS, run_all

__all__ = [
    "EXPERIMENT_RUNNERS",
    "run_all",
    "ExperimentProfile",
    "PAPER",
    "QUICK",
    "SMOKE",
    "get_profile",
    "run_table3",
    "summarize_winners",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table10",
    "run_table11",
    "run_table12",
    "run_figure6",
    "run_figure7",
    "LogitsResult",
    "run_efficiency_report",
]
