"""E12 — efficiency detail of Table III: parameters, MACs and step timings.

Accuracy aside, Table III reports four efficiency figures per model:
training seconds per epoch, inference seconds, MACs and parameter count.
This driver measures all four on untrained models (they do not depend on
the weights' values) so the comparison can be regenerated in seconds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..baselines import PAPER_BASELINES, create_model
from ..data.datasets import DATASET_SPECS
from ..profiling import (
    count_parameters,
    human_readable_count,
    measure_macs,
    time_inference,
    time_training_step,
)
from ..training import ResultsTable
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_MODELS", "run_efficiency_report", "main"]

DEFAULT_MODELS = ("LiPFormer",) + tuple(PAPER_BASELINES) + ("Transformer",)


def run_efficiency_report(
    profile: ExperimentProfile = QUICK,
    dataset: str = "ETTh1",
    models: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    batch_size: int = 32,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Measure parameters / MACs / step time for each model on one dataset."""
    models = tuple(models) if models else DEFAULT_MODELS
    horizon = horizon if horizon is not None else profile.horizons[0]
    n_channels = DATASET_SPECS[dataset].n_channels
    if profile.channel_cap:
        n_channels = min(n_channels, profile.channel_cap)
    config = profile.model_config(n_channels=n_channels, horizon=horizon)
    table = ResultsTable(title="Table III (efficiency columns) — parameters, MACs, timing")
    rng = np.random.default_rng(seed or profile.seed)
    for model_name in models:
        model = create_model(model_name, config, rng=rng)
        parameters = count_parameters(model)
        macs = measure_macs(model, batch_size=batch_size)
        table.add_row(
            model=model_name,
            dataset=dataset,
            parameters=parameters,
            parameters_human=human_readable_count(parameters),
            macs=macs,
            macs_human=human_readable_count(macs),
            train_step_s=time_training_step(model, batch_size=batch_size),
            inference_s=time_inference(model, batch_size=batch_size),
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_efficiency_report().to_text(float_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
