"""E10 — Figure 6: removing the Covariate Encoder on Electricity-Price.

Figure 6 plots LiPFormer's MSE/MAE on Electricity-Price at each forecast
horizon with and without the future Covariate Encoder.  This driver produces
the underlying series (one row per horizon).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.variants import lipformer_full, lipformer_without_covariate_guidance
from ..training import ResultsTable
from .common import config_for_data, prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["run_figure6", "main"]

DEFAULT_DATASET = "ElectricityPrice"


def run_figure6(
    profile: ExperimentProfile = QUICK,
    dataset: str = DEFAULT_DATASET,
    horizons: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate the data behind Figure 6 (with vs without covariate encoder)."""
    horizons = tuple(horizons) if horizons else profile.horizons
    table = ResultsTable(title="Figure 6 — impact of the future Covariate Encoder (Electricity-Price)")
    for horizon in horizons:
        data = prepare_profile_data(profile, dataset, horizon, seed=seed)
        config = config_for_data(profile, data)
        rng_seed = seed or profile.seed
        with_encoder = train_model_on(
            "LiPFormer (future enc)",
            profile,
            data,
            model=lipformer_full(config, rng=np.random.default_rng(rng_seed)),
            pretrain=True,
            seed=seed,
        )
        without_encoder = train_model_on(
            "LiPFormer (without enc)",
            profile,
            data,
            model=lipformer_without_covariate_guidance(config, rng=np.random.default_rng(rng_seed)),
            pretrain=False,
            seed=seed,
        )
        table.add_row(
            dataset=dataset,
            horizon=horizon,
            mse_with_encoder=with_encoder.mse,
            mae_with_encoder=with_encoder.mae,
            mse_without_encoder=without_encoder.mse,
            mae_without_encoder=without_encoder.mae,
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_figure6().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
