"""E1 — Table III: multivariate forecasting accuracy and efficiency.

The paper compares LiPFormer against six baselines on nine datasets and four
horizons, reporting MSE/MAE plus training time, inference time, MACs and
parameter counts.  This driver regenerates the same rows for any subset of
datasets / horizons / models.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..baselines import PAPER_BASELINES
from ..training import ResultsTable
from .common import prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "DEFAULT_MODELS", "run_table3", "main"]

#: the paper evaluates all nine datasets; the quick default keeps a
#: representative subset covering volatile (ETT), smooth (Weather) and
#: covariate-bearing (Cycle / Electricity-Price) data.
DEFAULT_DATASETS = ("ETTh1", "ETTh2", "Weather", "Cycle", "ElectricityPrice")
DEFAULT_MODELS = ("LiPFormer",) + tuple(PAPER_BASELINES)


def run_table3(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizons: Optional[Sequence[int]] = None,
    models: Optional[Sequence[str]] = None,
    with_efficiency: bool = True,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table III."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizons = tuple(horizons) if horizons else profile.horizons
    models = tuple(models) if models else DEFAULT_MODELS
    table = ResultsTable(title="Table III — multivariate long-term forecasting")
    for dataset in datasets:
        for horizon in horizons:
            data = prepare_profile_data(profile, dataset, horizon, seed=seed)
            for model_name in models:
                result = train_model_on(
                    model_name, profile, data, with_macs=with_efficiency, seed=seed
                )
                table.add_row(**result.as_row())
    return table


def summarize_winners(table: ResultsTable) -> ResultsTable:
    """Count first places per model (the paper's last "Count" row)."""
    counts: dict = {}
    best = table.best_by("mse", group_keys=("dataset", "horizon"))
    for row in best.values():
        counts[row["model"]] = counts.get(row["model"], 0) + 1
    summary = ResultsTable(title="First-place counts (by MSE)")
    for model, count in sorted(counts.items(), key=lambda item: -item[1]):
        summary.add_row(model=model, first_places=count)
    return summary


def main() -> None:  # pragma: no cover - CLI entry point
    table = run_table3()
    print(table.to_text())
    print()
    print(summarize_winners(table).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
