"""Run every experiment driver and write a results directory.

Command line::

    python -m repro.experiments.run_all --profile quick --output results/
    python -m repro.experiments.run_all --only table3 figure6 --profile smoke

For each selected experiment the resulting table is written as CSV and JSON
under the output directory, and a single ``report.md`` summarises all of
them.  This is the one-command path to regenerating the paper's evaluation.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..training import ResultsTable
from . import (
    run_efficiency_report,
    run_figure6,
    run_figure7,
    run_table3,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
    run_table11,
    run_table12,
)
from .profiles import ExperimentProfile, get_profile

__all__ = ["EXPERIMENT_RUNNERS", "run_all", "main"]


def _figure7_table(profile: ExperimentProfile) -> ResultsTable:
    table, _ = run_figure7(profile)
    return table


#: experiment id -> (description, runner taking a profile and returning a table)
EXPERIMENT_RUNNERS: Dict[str, Tuple[str, Callable[[ExperimentProfile], ResultsTable]]] = {
    "table3": ("Table III — multivariate accuracy and efficiency", run_table3),
    "table5": ("Table V — univariate ETT forecasting", run_table5),
    "table6": ("Table VI — implicit temporal pre-training", run_table6),
    "table7": ("Table VII — CPU-only edge inference", run_table7),
    "table8": ("Table VIII — patch size sweep", run_table8),
    "table9": ("Table IX — input length sweep", run_table9),
    "table10": ("Table X — LayerNorm / FFN ablation", run_table10),
    "table11": ("Table XI — patch-wise attention ablation", run_table11),
    "table12": ("Table XII — Covariate Encoder transplant", run_table12),
    "figure6": ("Figure 6 — covariate encoder on/off", run_figure6),
    "figure7": ("Figure 7 — contrastive logits diagnostics", _figure7_table),
    "efficiency": ("Table III efficiency columns — params / MACs / timing", run_efficiency_report),
}


def run_all(
    profile: ExperimentProfile,
    output_dir: str,
    only: Optional[Iterable[str]] = None,
) -> Dict[str, ResultsTable]:
    """Run the selected experiments, persist their tables and a report."""
    selected: List[str] = list(only) if only else list(EXPERIMENT_RUNNERS)
    unknown = [name for name in selected if name not in EXPERIMENT_RUNNERS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; available: {sorted(EXPERIMENT_RUNNERS)}")

    os.makedirs(output_dir, exist_ok=True)
    tables: Dict[str, ResultsTable] = {}
    report_lines = [
        "# LiPFormer reproduction report",
        "",
        f"profile: `{profile.name}`",
        "",
    ]
    for name in selected:
        description, runner = EXPERIMENT_RUNNERS[name]
        start = time.perf_counter()
        table = runner(profile)
        elapsed = time.perf_counter() - start
        tables[name] = table
        table.save_csv(os.path.join(output_dir, f"{name}.csv"))
        table.save_json(os.path.join(output_dir, f"{name}.json"))
        report_lines.extend(
            [
                f"## {description}",
                "",
                f"(regenerated in {elapsed:.1f} s, {len(table)} rows)",
                "",
                "```",
                table.to_text(),
                "```",
                "",
            ]
        )
    with open(os.path.join(output_dir, "report.md"), "w") as handle:
        handle.write("\n".join(report_lines))
    return tables


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures.")
    parser.add_argument("--profile", default="quick", help="experiment profile: paper, quick or smoke")
    parser.add_argument("--output", default="results", help="directory to write CSV/JSON/report.md into")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run ({', '.join(EXPERIMENT_RUNNERS)})",
    )
    arguments = parser.parse_args(argv)
    profile = get_profile(arguments.profile)
    tables = run_all(profile, arguments.output, only=arguments.only)
    for name, table in tables.items():
        print(f"=== {name} ===")
        print(table.to_text())
        print()
    print(f"wrote {len(tables)} tables to {arguments.output}/")


if __name__ == "__main__":  # pragma: no cover
    main()
