"""E2 — Table V: univariate long-term forecasting on the ETT datasets.

The univariate protocol forecasts only the target channel (oil temperature,
the last column of the ETT datasets) from its own history.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.datasets import load_dataset
from ..data.pipeline import prepare_forecasting_data
from ..training import ResultsTable
from .common import train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "DEFAULT_MODELS", "run_table5", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTh2", "ETTm1", "ETTm2")
DEFAULT_MODELS = ("LiPFormer", "PatchTST", "DLinear", "iTransformer", "TiDE")


def run_table5(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizons: Optional[Sequence[int]] = None,
    models: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table V: univariate ETT forecasting."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizons = tuple(horizons) if horizons else profile.horizons
    models = tuple(models) if models else DEFAULT_MODELS
    table = ResultsTable(title="Table V — univariate long-term forecasting (ETT)")
    for dataset in datasets:
        series = load_dataset(dataset, n_timestamps=profile.n_timestamps, seed=seed or profile.seed)
        # Univariate protocol: keep only the target channel (oil temperature).
        univariate = series.select_channels([series.n_channels - 1])
        for horizon in horizons:
            data = prepare_forecasting_data(
                dataset,
                input_length=profile.input_length,
                horizon=horizon,
                stride=profile.window_stride,
                series=univariate,
            )
            for model_name in models:
                result = train_model_on(model_name, profile, data, seed=seed)
                table.add_row(**result.as_row())
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table5().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
