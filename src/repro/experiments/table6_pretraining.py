"""E3 — Table VI: effect of implicit-temporal-feature pre-training.

On datasets without explicit covariates, LiPFormer augments the weak data
with calendar features and pre-trains the dual encoder on them.  Table VI
compares LiPFormer with and without that pre-training at horizon 96.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..training import ResultsTable
from .common import prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "run_table6", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTh2", "ETTm1", "ETTm2")


def run_table6(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate Table VI: LiPFormer with vs without weak-label pre-training."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizon = horizon if horizon is not None else profile.horizons[0]
    table = ResultsTable(title="Table VI — implicit temporal pre-training ablation")
    for dataset in datasets:
        data = prepare_profile_data(profile, dataset, horizon, seed=seed)
        without = train_model_on("LiPFormer", profile, data, pretrain=False, seed=seed)
        with_pretrain = train_model_on("LiPFormer", profile, data, pretrain=True, seed=seed)
        table.add_row(
            dataset=dataset,
            horizon=horizon,
            mse_without_pretrain=without.mse,
            mae_without_pretrain=without.mae,
            mse_with_pretrain=with_pretrain.mse,
            mae_with_pretrain=with_pretrain.mae,
            mse_improvement=without.mse - with_pretrain.mse,
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table6().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
