"""Experiment profiles: the paper-scale configuration and a quick CPU profile.

Every experiment driver accepts a profile.  ``PAPER`` mirrors the paper's
Section IV-A2 configuration (input length 720, patch length 48, hidden size
512, horizons 96/192/336/720, 10 epochs).  ``QUICK`` shrinks the synthetic
datasets, the model width and the horizons so the complete benchmark harness
finishes on a laptop-class CPU while preserving the comparisons' shape.
``SMOKE`` is smaller still and is used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import ModelConfig, TrainingConfig

__all__ = ["ExperimentProfile", "PAPER", "QUICK", "SMOKE", "get_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs shared by all experiment drivers."""

    name: str
    n_timestamps: Optional[int]          # synthetic series length (None = paper Table II length)
    channel_cap: Optional[int]           # cap on channels for the very wide datasets
    input_length: int
    horizons: Tuple[int, ...]
    patch_length: int
    hidden_dim: int
    covariate_hidden_dim: int
    covariate_embed_dim: int
    dropout: float
    n_heads: int
    n_layers: int
    epochs: int
    pretrain_epochs: int
    batch_size: int
    window_stride: int
    learning_rate: float = 1e-3
    seed: int = 2021

    def model_config(
        self,
        n_channels: int,
        horizon: int,
        covariate_numerical_dim: int = 0,
        covariate_categorical_cardinalities: Tuple[int, ...] = (),
        input_length: Optional[int] = None,
        patch_length: Optional[int] = None,
    ) -> ModelConfig:
        """Build a :class:`ModelConfig` for this profile."""
        length = input_length if input_length is not None else self.input_length
        patch = patch_length if patch_length is not None else self.patch_length
        if length % patch != 0:
            patch = _largest_divisor(length, patch)
        return ModelConfig(
            input_length=length,
            horizon=horizon,
            n_channels=n_channels,
            patch_length=patch,
            hidden_dim=self.hidden_dim,
            dropout=self.dropout,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            covariate_numerical_dim=covariate_numerical_dim,
            covariate_categorical_cardinalities=covariate_categorical_cardinalities,
            covariate_embed_dim=self.covariate_embed_dim,
            covariate_hidden_dim=self.covariate_hidden_dim,
            seed=self.seed,
        )

    def training_config(self) -> TrainingConfig:
        """Build a :class:`TrainingConfig` for this profile."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            pretrain_epochs=self.pretrain_epochs,
            seed=self.seed,
        )


def _largest_divisor(length: int, preferred: int) -> int:
    for candidate in range(min(preferred, length), 0, -1):
        if length % candidate == 0:
            return candidate
    return 1


PAPER = ExperimentProfile(
    name="paper",
    n_timestamps=None,
    channel_cap=None,
    input_length=720,
    horizons=(96, 192, 336, 720),
    patch_length=48,
    hidden_dim=512,
    covariate_hidden_dim=128,
    covariate_embed_dim=16,
    dropout=0.5,
    n_heads=8,
    n_layers=3,
    epochs=10,
    pretrain_epochs=3,
    batch_size=256,
    window_stride=1,
)

QUICK = ExperimentProfile(
    name="quick",
    n_timestamps=3000,
    channel_cap=8,
    input_length=96,
    horizons=(24, 48),
    patch_length=24,
    hidden_dim=48,
    covariate_hidden_dim=16,
    covariate_embed_dim=4,
    dropout=0.1,
    n_heads=4,
    n_layers=2,
    epochs=3,
    pretrain_epochs=1,
    batch_size=64,
    window_stride=4,
)

SMOKE = ExperimentProfile(
    name="smoke",
    n_timestamps=1200,
    channel_cap=4,
    input_length=48,
    horizons=(12,),
    patch_length=12,
    hidden_dim=16,
    covariate_hidden_dim=8,
    covariate_embed_dim=2,
    dropout=0.05,
    n_heads=2,
    n_layers=1,
    epochs=1,
    pretrain_epochs=1,
    batch_size=32,
    window_stride=8,
)

_PROFILES = {"paper": PAPER, "quick": QUICK, "smoke": SMOKE}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a profile by name (``paper``, ``quick`` or ``smoke``)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError as error:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(_PROFILES)}") from error
