"""E8 — Table XI: ablation of the Cross-Patch and Inter-Patch attentions.

Each attention block is replaced by a linear layer in turn ("w/o
Cross-Patch", "w/o Inter-Patch", "Neither") and compared against the full
LiPFormer on the ETT datasets.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.variants import (
    lipformer_full,
    lipformer_without_both,
    lipformer_without_cross_patch,
    lipformer_without_inter_patch,
)
from ..training import ResultsTable
from .common import config_for_data, prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "VARIANTS", "run_table11", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTm2")

VARIANTS = {
    "Without Cross-Patch attn.": lipformer_without_cross_patch,
    "Without Inter-Patch attn.": lipformer_without_inter_patch,
    "Neither": lipformer_without_both,
    "LiPFormer": lipformer_full,
}


def run_table11(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    horizons: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table XI: patch-wise attention ablations."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    horizons = tuple(horizons) if horizons else (profile.horizons[0],)
    table = ResultsTable(title="Table XI — patch-wise attention ablation")
    for dataset in datasets:
        for horizon in horizons:
            data = prepare_profile_data(profile, dataset, horizon, seed=seed)
            config = config_for_data(profile, data)
            for variant_name, factory in VARIANTS.items():
                model = factory(config, rng=np.random.default_rng(seed or profile.seed))
                result = train_model_on(
                    variant_name, profile, data, model=model, pretrain=True, seed=seed
                )
                table.add_row(
                    dataset=dataset,
                    horizon=horizon,
                    variant=variant_name,
                    mse=result.mse,
                    mae=result.mae,
                )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table11().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
