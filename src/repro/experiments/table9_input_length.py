"""E6 — Table IX: impact of the input-sequence length.

Longer histories should help models that genuinely capture long-range
dependencies.  The paper sweeps input lengths {96, 192, 336, 720} over the
ETT and Weather datasets (prediction length 96) and reports MSE for
LiPFormer and the baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..training import ResultsTable
from .common import prepare_profile_data, train_model_on
from .profiles import QUICK, ExperimentProfile

__all__ = ["DEFAULT_DATASETS", "DEFAULT_MODELS", "run_table9", "main"]

DEFAULT_DATASETS = ("ETTh1", "ETTm2")
DEFAULT_MODELS = ("LiPFormer", "PatchTST", "DLinear", "TiDE")


def run_table9(
    profile: ExperimentProfile = QUICK,
    datasets: Optional[Sequence[str]] = None,
    input_lengths: Optional[Sequence[int]] = None,
    models: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
    seed: Optional[int] = None,
) -> ResultsTable:
    """Regenerate (a slice of) Table IX: MSE as the input length grows."""
    datasets = tuple(datasets) if datasets else DEFAULT_DATASETS
    models = tuple(models) if models else DEFAULT_MODELS
    horizon = horizon if horizon is not None else profile.horizons[0]
    if input_lengths is None:
        input_lengths = (
            profile.input_length // 2,
            profile.input_length,
            profile.input_length * 2,
        )
    table = ResultsTable(title="Table IX — impact of input sequence length (MSE)")
    for dataset in datasets:
        for input_length in input_lengths:
            data = prepare_profile_data(profile, dataset, horizon, input_length=input_length, seed=seed)
            row = {"dataset": dataset, "input_length": input_length, "horizon": horizon}
            for model_name in models:
                result = train_model_on(model_name, profile, data, seed=seed)
                row[model_name] = result.mse
            table.add_row(**row)
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_table9().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
