"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Linear, MSELoss, Parameter, Tensor
from repro.nn.scheduler import CosineAnnealingLR, ReduceLROnPlateau, StepLR


def quadratic_loss(parameter: Parameter) -> Tensor:
    return (parameter * parameter).sum()


def run_optimizer_on_quadratic(optimizer_factory, steps: int = 200) -> float:
    parameter = Parameter(np.array([5.0, -3.0], dtype=np.float32))
    optimizer = optimizer_factory([parameter])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
    return float(np.abs(parameter.data).max())


class TestOptimizers:
    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_sgd_minimises_quadratic(self):
        assert run_optimizer_on_quadratic(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_minimises_quadratic(self):
        assert run_optimizer_on_quadratic(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_sgd_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_adam_minimises_quadratic(self):
        assert run_optimizer_on_quadratic(lambda p: Adam(p, lr=0.1)) < 1e-2

    def test_adamw_minimises_quadratic(self):
        assert run_optimizer_on_quadratic(lambda p: AdamW(p, lr=0.1, weight_decay=0.01)) < 1e-2

    def test_adamw_weight_decay_shrinks_unused_parameter(self):
        # A parameter with zero gradient should still decay under AdamW.
        parameter = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = AdamW([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(1, dtype=np.float32)
        for _ in range(10):
            optimizer.step()
        assert abs(parameter.data[0]) < 1.0

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()  # no gradient yet: must be a no-op
        np.testing.assert_allclose(parameter.data, [1.0])

    def test_zero_grad_clears_gradients(self):
        parameter = Parameter(np.array([1.0], dtype=np.float32))
        parameter.grad = np.ones(1, dtype=np.float32)
        optimizer = SGD([parameter], lr=0.1)
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_training_a_small_regression_model(self, rng):
        x = rng.standard_normal((64, 4)).astype(np.float32)
        true_w = rng.standard_normal((4, 1)).astype(np.float32)
        y = x @ true_w
        model = Linear(4, 1, rng=rng)
        optimizer = AdamW(model.parameters(), lr=0.05)
        loss_fn = MSELoss()
        first_loss = None
        for step in range(150):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.01 * first_loss


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr_halves(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        for _ in range(4):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)

    def test_cosine_reaches_eta_min(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)

    def test_plateau_reduces_after_patience(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(metric=1.0)
        scheduler.step(metric=1.0)
        scheduler.step(metric=1.0)
        assert optimizer.lr == pytest.approx(0.5)

    def test_plateau_keeps_lr_when_improving(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        for metric in (1.0, 0.9, 0.8, 0.7):
            scheduler.step(metric=metric)
        assert optimizer.lr == pytest.approx(1.0)
