"""Unit tests for Tensor arithmetic, reductions and shape manipulation."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, stack
from repro.nn.gradcheck import check_gradients


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 5.0
        np.testing.assert_allclose(out.data, [6.0, 7.0])

    def test_radd(self):
        out = 5.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [6.0, 7.0])

    def test_sub(self):
        out = Tensor([5.0, 7.0]) - Tensor([2.0, 3.0])
        np.testing.assert_allclose(out.data, [3.0, 4.0])

    def test_rsub(self):
        out = 10.0 - Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [9.0, 8.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0, 9.0]) / Tensor([2.0, 3.0])
        np.testing.assert_allclose(out.data, [4.0, 3.0])

    def test_rdiv(self):
        out = 12.0 / Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 3.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])  # type: ignore[operator]

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((4, 2, 3)))
        b = Tensor(rng.standard_normal((4, 3, 5)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_broadcast_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((a + b).data, [[2, 3, 4], [2, 3, 4]])


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == pytest.approx(10.0)

    def test_sum_axis(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_sum_keepdims(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        assert Tensor([1.0, 2.0, 3.0]).mean().item() == pytest.approx(2.0)

    def test_mean_axis(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).mean(axis=1)
        np.testing.assert_allclose(out.data, [1.5, 3.5])

    def test_var_matches_numpy(self, rng):
        x = rng.standard_normal((5, 7))
        out = Tensor(x).var(axis=1)
        np.testing.assert_allclose(out.data, x.var(axis=1), rtol=1e-5, atol=1e-6)

    def test_std_matches_numpy(self, rng):
        x = rng.standard_normal((5, 7))
        out = Tensor(x).std(axis=0, eps=0.0)
        np.testing.assert_allclose(out.data, x.std(axis=0), rtol=1e-4, atol=1e-5)

    def test_max(self):
        out = Tensor([[1.0, 5.0], [3.0, 2.0]]).max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 3.0])


class TestElementWise:
    def test_exp_log_roundtrip(self, rng):
        x = np.abs(rng.standard_normal((3, 3))) + 0.1
        out = Tensor(x).log().exp()
        np.testing.assert_allclose(out.data, x, rtol=1e-5)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_abs(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).abs().data, [1.0, 2.0])

    def test_tanh_bounds(self, rng):
        out = Tensor(rng.standard_normal(100) * 10).tanh()
        assert np.all(np.abs(out.data) <= 1.0)

    def test_sigmoid_bounds(self, rng):
        out = Tensor(rng.standard_normal(100) * 10).sigmoid()
        assert np.all((out.data >= 0) & (out.data <= 1))

    def test_relu(self):
        np.testing.assert_allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_clip(self):
        out = Tensor([-2.0, 0.5, 3.0]).clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])


class TestShapes:
    def test_reshape(self):
        out = Tensor(np.arange(6.0)).reshape(2, 3)
        assert out.shape == (2, 3)

    def test_reshape_tuple(self):
        out = Tensor(np.arange(6.0)).reshape((3, 2))
        assert out.shape == (3, 2)

    def test_transpose_default(self):
        out = Tensor(np.zeros((2, 3, 4))).transpose()
        assert out.shape == (4, 3, 2)

    def test_transpose_axes(self):
        out = Tensor(np.zeros((2, 3, 4))).transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)

    def test_swapaxes(self):
        out = Tensor(np.zeros((2, 3, 4))).swapaxes(-1, -2)
        assert out.shape == (2, 4, 3)

    def test_unsqueeze_squeeze(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.unsqueeze(1).shape == (2, 1, 3)
        assert x.unsqueeze(1).squeeze(1).shape == (2, 3)

    def test_broadcast_to(self):
        out = Tensor(np.ones((1, 3))).broadcast_to((4, 3))
        assert out.shape == (4, 3)

    def test_repeat(self):
        out = Tensor(np.array([[1.0, 2.0]])).repeat(3, axis=0)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out.data[2], [1.0, 2.0])

    def test_getitem(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose(x[1].data, [4, 5, 6, 7])
        np.testing.assert_allclose(x[:, 2].data, [2, 6, 10])

    def test_concatenate(self):
        out = concatenate([Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_stack(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert out.shape == (2, 3)

    def test_len_and_size(self):
        x = Tensor(np.zeros((5, 2)))
        assert len(x) == 5
        assert x.size == 10
        assert x.ndim == 2


class TestGradientsOfOps:
    """Each primitive's gradient is verified against finite differences."""

    def test_add_grad(self, rng):
        check_gradients(lambda t: (t[0] + t[1]).sum(), [rng.standard_normal((3, 2)), rng.standard_normal((3, 2))])

    def test_broadcast_add_grad(self, rng):
        check_gradients(lambda t: (t[0] + t[1]).sum(), [rng.standard_normal((3, 2)), rng.standard_normal((2,))])

    def test_mul_grad(self, rng):
        check_gradients(lambda t: (t[0] * t[1]).sum(), [rng.standard_normal((4,)), rng.standard_normal((4,))])

    def test_div_grad(self, rng):
        check_gradients(
            lambda t: (t[0] / t[1]).sum(),
            [rng.standard_normal((3,)), np.abs(rng.standard_normal((3,))) + 1.0],
        )

    def test_matmul_grad(self, rng):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rng.standard_normal((3, 4)), rng.standard_normal((4, 2))])

    def test_batched_matmul_grad(self, rng):
        check_gradients(
            lambda t: (t[0] @ t[1]).sum(),
            [rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4, 2))],
        )

    def test_pow_grad(self, rng):
        check_gradients(lambda t: (t[0] ** 3).sum(), [rng.standard_normal((5,))])

    def test_exp_grad(self, rng):
        check_gradients(lambda t: t[0].exp().sum(), [rng.standard_normal((4,))])

    def test_log_grad(self, rng):
        check_gradients(lambda t: t[0].log().sum(), [np.abs(rng.standard_normal((4,))) + 0.5])

    def test_sqrt_grad(self, rng):
        check_gradients(lambda t: t[0].sqrt().sum(), [np.abs(rng.standard_normal((4,))) + 0.5])

    def test_tanh_grad(self, rng):
        check_gradients(lambda t: t[0].tanh().sum(), [rng.standard_normal((4,))])

    def test_sigmoid_grad(self, rng):
        check_gradients(lambda t: t[0].sigmoid().sum(), [rng.standard_normal((4,))])

    def test_abs_grad(self, rng):
        check_gradients(lambda t: t[0].abs().sum(), [rng.standard_normal((6,)) + 3.0])

    def test_mean_grad(self, rng):
        check_gradients(lambda t: t[0].mean(), [rng.standard_normal((3, 4))])

    def test_sum_axis_grad(self, rng):
        check_gradients(lambda t: (t[0].sum(axis=1) ** 2).sum(), [rng.standard_normal((3, 4))])

    def test_var_grad(self, rng):
        check_gradients(lambda t: t[0].var(axis=1).sum(), [rng.standard_normal((3, 4))])

    def test_max_grad(self, rng):
        x = rng.standard_normal((3, 4))
        check_gradients(lambda t: t[0].max(axis=1).sum(), [x])

    def test_reshape_transpose_grad(self, rng):
        check_gradients(
            lambda t: (t[0].reshape(2, 6).transpose(1, 0) ** 2).sum(), [rng.standard_normal((3, 4))]
        )

    def test_getitem_grad(self, rng):
        check_gradients(lambda t: (t[0][1:, :2] ** 2).sum(), [rng.standard_normal((3, 4))])

    def test_concatenate_grad(self, rng):
        check_gradients(
            lambda t: (concatenate([t[0], t[1]], axis=1) ** 2).sum(),
            [rng.standard_normal((2, 3)), rng.standard_normal((2, 2))],
        )

    def test_stack_grad(self, rng):
        check_gradients(
            lambda t: (stack([t[0], t[1]], axis=0) ** 2).sum(),
            [rng.standard_normal((3,)), rng.standard_normal((3,))],
        )

    def test_repeat_grad(self, rng):
        check_gradients(lambda t: (t[0].repeat(3, axis=0) ** 2).sum(), [rng.standard_normal((2, 3))])

    def test_repeat_grad_negative_axis(self, rng):
        """Regression: axis=-1 used to insert the repeats dim at the front
        of the backward reshape, silently regrouping gradients."""
        check_gradients(lambda t: (t[0].repeat(3, axis=-1) ** 2).sum(), [rng.standard_normal((2, 3))])

    def test_broadcast_to_grad(self, rng):
        check_gradients(
            lambda t: (t[0].broadcast_to((4, 3)) ** 2).sum(), [rng.standard_normal((1, 3))]
        )

    def test_clip_grad(self, rng):
        check_gradients(lambda t: t[0].clip(-0.5, 0.5).sum(), [rng.standard_normal((5,)) * 2])


class TestAsTensor:
    def test_as_tensor_passthrough(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x

    def test_as_tensor_from_list(self):
        assert as_tensor([1.0, 2.0]).shape == (2,)
