"""Regression tests: seedable fallback RNG for dropout.

``repro.nn.functional.dropout`` used to fall back to a fresh unseeded
``np.random.default_rng()`` per call (and each ``Dropout`` layer owned its
own unseeded generator), so two identically-seeded training runs diverged.
The fallback now routes through a module-level generator reseedable via
``manual_seed`` / ``seed_everything``.
"""

import numpy as np

from repro.nn import (
    Dropout,
    Linear,
    Module,
    SGD,
    Tensor,
    default_generator,
    manual_seed,
    seed_everything,
)
from repro.nn import functional as F


class TestFunctionalDropout:
    def test_manual_seed_makes_fallback_deterministic(self):
        x = Tensor(np.ones((64, 32), dtype=np.float32))
        manual_seed(123)
        first = F.dropout(x, 0.5, training=True).data.copy()
        manual_seed(123)
        second = F.dropout(x, 0.5, training=True).data.copy()
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        x = Tensor(np.ones((64, 32), dtype=np.float32))
        manual_seed(0)
        first = F.dropout(x, 0.5, training=True).data.copy()
        manual_seed(1)
        second = F.dropout(x, 0.5, training=True).data.copy()
        assert not np.array_equal(first, second)

    def test_explicit_rng_still_wins(self):
        x = Tensor(np.ones((16, 16), dtype=np.float32))
        manual_seed(0)
        first = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(9)).data.copy()
        manual_seed(1)  # must not matter when an explicit rng is passed
        second = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(9)).data.copy()
        np.testing.assert_array_equal(first, second)

    def test_default_generator_is_the_fallback(self):
        manual_seed(42)
        expected = default_generator().random((8, 8)) >= 0.5
        manual_seed(42)
        mask = F.dropout(Tensor(np.ones((8, 8), dtype=np.float32)), 0.5, training=True).data != 0
        np.testing.assert_array_equal(mask, expected)


class TestDropoutLayer:
    def test_layer_without_rng_is_seedable(self):
        layer = Dropout(0.4)
        x = Tensor(np.ones((32, 32), dtype=np.float32))
        manual_seed(7)
        first = layer(x).data.copy()
        manual_seed(7)
        second = layer(x).data.copy()
        np.testing.assert_array_equal(first, second)

    def test_layer_with_explicit_rng_unchanged(self):
        layer = Dropout(0.4, rng=np.random.default_rng(3))
        other = Dropout(0.4, rng=np.random.default_rng(3))
        x = Tensor(np.ones((32, 32), dtype=np.float32))
        np.testing.assert_array_equal(layer(x).data, other(x).data)


class _TinyDropoutNet(Module):
    """Minimal net whose Dropout relies on the shared fallback generator."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(8, 16, rng=rng)
        self.drop = Dropout(0.5)  # deliberately no rng
        self.fc2 = Linear(16, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.drop(self.fc1(x).relu()))


def _train_losses(seed: int) -> list:
    generator = seed_everything(seed)
    model = _TinyDropoutNet(np.random.default_rng(0))
    optimizer = SGD(model.parameters(), lr=1e-2)
    x = generator.normal(size=(64, 8)).astype(np.float32)
    y = generator.normal(size=(64, 1)).astype(np.float32)
    losses = []
    for _ in range(5):
        optimizer.zero_grad()
        diff = model(Tensor(x)) - Tensor(y)
        loss = (diff * diff).mean()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


class TestSeededTrainingRuns:
    def test_two_seeded_runs_produce_identical_losses(self):
        assert _train_losses(2021) == _train_losses(2021)

    def test_losses_depend_on_seed(self):
        assert _train_losses(1) != _train_losses(2)
