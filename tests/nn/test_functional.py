"""Tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_gelu_known_values(self):
        out = F.gelu(Tensor([0.0]))
        assert out.item() == pytest.approx(0.0, abs=1e-6)
        # GELU(x) -> x for large positive x and -> 0 for large negative x.
        assert F.gelu(Tensor([10.0])).item() == pytest.approx(10.0, rel=1e-3)
        assert F.gelu(Tensor([-10.0])).item() == pytest.approx(0.0, abs=1e-3)

    def test_gelu_gradcheck(self, rng):
        check_gradients(lambda t: F.gelu(t[0]).sum(), [rng.standard_normal((5,))])

    def test_gelu_kernel_buffered_is_bit_identical(self, rng):
        """The plan path (preallocated out + scratch) and the eager path
        (fresh arrays) must share one fused GELU — equal bit for bit."""
        x = rng.standard_normal((6, 8)).astype(np.float32)
        plain = F.gelu_kernel(x)
        out = np.empty_like(x)
        inner_buf = np.empty_like(x)
        buffered = F.gelu_kernel(x, out=out, inner_buf=inner_buf)
        assert buffered is out
        assert np.array_equal(plain, buffered)
        assert np.array_equal(plain, F.gelu(Tensor(x)).data)

    def test_gelu_grad_and_nograd_paths_bit_identical(self, rng):
        """The autograd forward and the fused kernel must agree exactly —
        compiled plans interleave with eager calls on the same model."""
        from repro.nn import no_grad

        x = rng.standard_normal((4, 7)).astype(np.float32)
        grad_path = F.gelu(Tensor(x, requires_grad=True)).data
        with no_grad():
            fast_path = F.gelu(Tensor(x)).data
        assert np.array_equal(grad_path, fast_path)

    def test_sigmoid_matches_formula(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(F.sigmoid(Tensor(x)).data, 1 / (1 + np.exp(-x)), rtol=1e-5)

    def test_tanh_matches_numpy(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x), rtol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((4, 7))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x), axis=-1).data
        b = F.softmax(Tensor(x + 100.0), axis=-1).data
        np.testing.assert_allclose(a, b, rtol=1e-4)

    def test_large_values_stable(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]), axis=-1)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), rtol=1e-4, atol=1e-5
        )

    def test_softmax_gradcheck(self, rng):
        check_gradients(lambda t: (F.softmax(t[0], axis=-1) ** 2).sum(), [rng.standard_normal((3, 4))])

    def test_log_softmax_gradcheck(self, rng):
        check_gradients(lambda t: (F.log_softmax(t[0], axis=-1) ** 2).sum(), [rng.standard_normal((3, 4))])

    def test_softmax_kernel_buffered_is_bit_identical(self, rng):
        """The plan path (preallocated buffers) and the eager path (fresh
        arrays) must share one softmax — outputs equal bit for bit."""
        x = rng.standard_normal((5, 9)).astype(np.float32)
        plain = F.softmax_kernel(x, axis=-1)
        out = np.empty_like(x)
        reduce_buf = np.empty((5, 1), dtype=np.float32)
        buffered = F.softmax_kernel(x, axis=-1, out=out, reduce_buf=reduce_buf)
        assert buffered is out
        assert np.array_equal(plain, buffered)
        assert np.array_equal(plain, F.softmax(Tensor(x), axis=-1).data)

    def test_log_softmax_kernel_buffered_is_bit_identical(self, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        plain = F.log_softmax_kernel(x, axis=-1)
        out = np.empty_like(x)
        assert np.array_equal(plain, F.log_softmax_kernel(x, axis=-1, out=out))
        assert np.array_equal(plain, F.log_softmax(Tensor(x), axis=-1).data)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = F.dropout(x, p=0.0, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_mode_zeroes_and_rescales(self):
        generator = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.5, training=True, rng=generator)
        kept = out.data != 0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(out.data[kept], 2.0)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), p=1.0, training=True)


class TestLinearAndLayerNorm:
    def test_linear_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        w = rng.standard_normal((3, 5)).astype(np.float32)
        b = rng.standard_normal((3,)).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-4, atol=1e-5)

    def test_linear_without_bias(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        w = rng.standard_normal((3, 5)).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, x @ w.T, rtol=1e-4, atol=1e-5)

    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((6, 16)).astype(np.float32)
        out = F.layer_norm(Tensor(x), Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(6), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(6), atol=1e-2)

    def test_layer_norm_gradcheck(self, rng):
        check_gradients(
            lambda t: (F.layer_norm(t[0], t[1], t[2]) ** 2).sum(),
            [rng.standard_normal((3, 5)), rng.standard_normal(5), rng.standard_normal(5)],
        )

    def test_layer_norm_kernel_buffered_is_bit_identical(self, rng):
        """Eager (fresh arrays) and plan (reused buffers) layer norm share
        one kernel and agree bit for bit."""
        x = rng.standard_normal((6, 8)).astype(np.float32)
        w = rng.standard_normal(8).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        plain = F.layer_norm_kernel(x, w, b)
        out = np.empty_like(x)
        square_buf = np.empty_like(x)
        reduce_buf = np.empty((6, 1), dtype=np.float32)
        buffered = F.layer_norm_kernel(
            x, w, b, out=out, square_buf=square_buf, reduce_buf=reduce_buf
        )
        assert buffered is out
        assert np.array_equal(plain, buffered)
        assert np.array_equal(plain, F.layer_norm(Tensor(x), Tensor(w), Tensor(b)).data)

    def test_layer_norm_grad_and_eval_forwards_agree(self, rng):
        from repro.nn import no_grad

        x = rng.standard_normal((3, 7)).astype(np.float32)
        w = rng.standard_normal(7).astype(np.float32)
        b = rng.standard_normal(7).astype(np.float32)
        tracked = F.layer_norm(
            Tensor(x, requires_grad=True), Tensor(w), Tensor(b)
        ).data
        with no_grad():
            untracked = F.layer_norm(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(tracked, untracked, rtol=1e-6, atol=1e-7)


class TestAttentionFunctional:
    def test_attention_output_shape(self, rng):
        q = Tensor(rng.standard_normal((2, 5, 8)))
        out = F.scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)

    def test_attention_is_convex_combination(self, rng):
        # With identical value rows the output must equal that row.
        value = np.tile(np.arange(8.0, dtype=np.float32), (2, 5, 1))
        q = Tensor(rng.standard_normal((2, 5, 8)))
        out = F.scaled_dot_product_attention(q, q, Tensor(value))
        np.testing.assert_allclose(out.data, value, rtol=1e-4)

    def test_attention_gradcheck(self, rng):
        check_gradients(
            lambda t: (F.scaled_dot_product_attention(t[0], t[1], t[2]) ** 2).sum(),
            [rng.standard_normal((1, 3, 4)) for _ in range(3)],
        )


class TestOneHotAndSmoothL1:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), num_classes=3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_smooth_l1_quadratic_region(self):
        pred = Tensor([0.5], requires_grad=True)
        loss = F.smooth_l1(pred, Tensor([0.0]), beta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_smooth_l1_linear_region(self):
        pred = Tensor([3.0], requires_grad=True)
        loss = F.smooth_l1(pred, Tensor([0.0]), beta=1.0)
        assert loss.item() == pytest.approx(2.5)

    def test_smooth_l1_gradcheck(self, rng):
        check_gradients(
            lambda t: F.smooth_l1(t[0], t[1], beta=0.7),
            [rng.standard_normal((6,)) * 2, rng.standard_normal((6,))],
        )
