"""Tests of the autograd machinery itself (graph behaviour, modes, errors)."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn.tensor import count_macs


class TestBackwardBasics:
    def test_scalar_backward(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_scalar_without_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_gradient_accumulation_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradients(self):
        # y = a*x used twice downstream: gradient must sum both paths.
        x = Tensor([3.0], requires_grad=True)
        y = x * 2
        z = (y + y * y).sum()
        z.backward()
        # dz/dx = 2 + 2*y*2 = 2 + 4*6 = 26
        np.testing.assert_allclose(x.grad, [26.0])

    def test_reused_tensor_in_multiple_ops(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        out = (x * 3).sum() + (x * 4).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [7.0, 7.0])

    def test_grad_flows_only_to_requires_grad_parents(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=False)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])
        assert b.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach()
        assert not y.requires_grad
        np.testing.assert_allclose(y.data, x.data)

    def test_requires_grad_ignored_inside_no_grad(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
        assert not x.requires_grad


class TestMacCounter:
    def test_counts_matmul_macs(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.zeros((3, 4)))
        with count_macs() as counter:
            a @ b
        assert counter.total == 2 * 4 * 3

    def test_nested_counters_restore(self):
        a = Tensor(np.zeros((2, 2)))
        with count_macs() as outer:
            a @ a
            with count_macs() as inner:
                a @ a
            a @ a
        assert inner.total == 8
        assert outer.total == 16

    def test_counter_inactive_outside_context(self):
        a = Tensor(np.zeros((2, 2)))
        with count_macs() as counter:
            pass
        a @ a
        assert counter.total == 0


class TestItemAndRepr:
    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_numpy_returns_underlying(self):
        x = Tensor([1.0, 2.0])
        assert x.numpy() is x.data

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestGradModeThreadLocality:
    """no_grad must be per-thread: parallel inference (repro.runtime pool
    workers running predict under no_grad) must never switch gradients off
    for a concurrent training thread — or leave them off for the process."""

    def test_no_grad_in_worker_does_not_leak_to_main_thread(self):
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with no_grad():
                entered.set()
                release.wait(5)
                seen["worker"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(5)
        # The worker sits inside no_grad right now; this thread must be
        # unaffected, both for the flag and for real graph recording.
        assert is_grad_enabled()
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])
        release.set()
        thread.join(5)
        assert seen["worker"] is False
        assert is_grad_enabled()

    def test_overlapping_no_grad_blocks_cannot_corrupt_each_other(self):
        """The process-wide-flag failure mode: B enters while A is inside,
        A exits, B exits restoring A's 'False' — gradients stay off
        forever.  Thread-local state makes the interleaving harmless."""
        import threading

        barrier = threading.Barrier(2, timeout=5)

        def inference():
            for _ in range(50):
                with no_grad():
                    barrier.wait()          # force overlapping enter/exit
                    assert not is_grad_enabled()
                    barrier.wait()
                assert is_grad_enabled()

        threads = [threading.Thread(target=inference) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
            assert not thread.is_alive()
        assert is_grad_enabled()
