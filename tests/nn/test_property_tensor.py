"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F

_settings = settings(max_examples=30, deadline=None)

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)


def arrays(max_side: int = 5, min_dims: int = 1, max_dims: int = 3):
    return hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


class TestAlgebraicProperties:
    @_settings
    @given(arrays())
    def test_addition_commutative(self, x):
        a, b = Tensor(x), Tensor(x[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5)

    @_settings
    @given(arrays())
    def test_double_negation_identity(self, x):
        np.testing.assert_allclose((-(-Tensor(x))).data, x, rtol=1e-6)

    @_settings
    @given(arrays())
    def test_sub_then_add_roundtrip(self, x):
        a = Tensor(x)
        b = Tensor(np.ones_like(x))
        np.testing.assert_allclose(((a - b) + b).data, x, rtol=1e-4, atol=1e-5)

    @_settings
    @given(arrays())
    def test_relu_idempotent(self, x):
        once = F.relu(Tensor(x)).data
        twice = F.relu(F.relu(Tensor(x))).data
        np.testing.assert_allclose(once, twice)

    @_settings
    @given(arrays(min_dims=2, max_dims=2))
    def test_softmax_rows_are_distributions(self, x):
        out = F.softmax(Tensor(x), axis=-1).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[0]), rtol=1e-4)

    @_settings
    @given(arrays(min_dims=2, max_dims=2))
    def test_reshape_roundtrip_preserves_values(self, x):
        tensor = Tensor(x)
        flattened = tensor.reshape(x.size)
        restored = flattened.reshape(*x.shape)
        np.testing.assert_allclose(restored.data, x)

    @_settings
    @given(arrays(min_dims=2, max_dims=3))
    def test_transpose_involution(self, x):
        tensor = Tensor(x)
        axes = tuple(reversed(range(x.ndim)))
        np.testing.assert_allclose(tensor.transpose(axes).transpose(axes).data, x)


class TestGradientProperties:
    @_settings
    @given(arrays(max_side=4))
    def test_sum_gradient_is_all_ones(self, x):
        tensor = Tensor(x, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(x))

    @_settings
    @given(arrays(max_side=4))
    def test_mean_gradient_is_uniform(self, x):
        tensor = Tensor(x, requires_grad=True)
        tensor.mean().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(x, 1.0 / x.size), rtol=1e-5)

    @_settings
    @given(arrays(max_side=4), st.floats(min_value=-3, max_value=3, allow_nan=False, width=32))
    def test_linear_scaling_gradient(self, x, scale):
        tensor = Tensor(x, requires_grad=True)
        (tensor * float(scale)).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(x, float(scale)), rtol=1e-4, atol=1e-5)

    @_settings
    @given(arrays(max_side=4, min_dims=2, max_dims=2))
    def test_gradient_shape_always_matches_input(self, x):
        tensor = Tensor(x, requires_grad=True)
        out = (F.gelu(tensor) * 2 + tensor.mean()).sum()
        out.backward()
        assert tensor.grad.shape == x.shape
        assert np.all(np.isfinite(tensor.grad))
