"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (
    CrossEntropyLoss,
    MAELoss,
    MSELoss,
    SmoothL1Loss,
    SymmetricContrastiveLoss,
    Tensor,
)
from repro.nn.gradcheck import check_gradients


class TestRegressionLosses:
    def test_mse_matches_numpy(self, rng):
        pred, target = rng.standard_normal((4, 3)), rng.standard_normal((4, 3))
        loss = MSELoss()(Tensor(pred), target)
        assert loss.item() == pytest.approx(np.mean((pred - target) ** 2), rel=1e-5)

    def test_mae_matches_numpy(self, rng):
        pred, target = rng.standard_normal((4, 3)), rng.standard_normal((4, 3))
        loss = MAELoss()(Tensor(pred), target)
        assert loss.item() == pytest.approx(np.mean(np.abs(pred - target)), rel=1e-5)

    def test_mse_zero_for_perfect_prediction(self, rng):
        x = rng.standard_normal((5, 2))
        assert MSELoss()(Tensor(x), x).item() == pytest.approx(0.0, abs=1e-8)

    def test_smooth_l1_beta_validation(self):
        with pytest.raises(ValueError):
            SmoothL1Loss(beta=0.0)

    def test_smooth_l1_below_mse_like(self):
        # |error| < beta -> 0.5 * err^2 / beta
        loss = SmoothL1Loss(beta=2.0)(Tensor([1.0]), np.array([0.0]))
        assert loss.item() == pytest.approx(0.25)

    def test_smooth_l1_above_is_linear(self):
        loss = SmoothL1Loss(beta=1.0)(Tensor([10.0]), np.array([0.0]))
        assert loss.item() == pytest.approx(9.5)

    def test_smooth_l1_continuous_at_beta(self):
        beta = 1.0
        below = SmoothL1Loss(beta)(Tensor([beta - 1e-4]), np.array([0.0])).item()
        above = SmoothL1Loss(beta)(Tensor([beta + 1e-4]), np.array([0.0])).item()
        assert below == pytest.approx(above, abs=1e-3)

    def test_smooth_l1_less_sensitive_to_outliers_than_mse(self, rng):
        target = np.zeros(10, dtype=np.float32)
        pred = np.zeros(10, dtype=np.float32)
        pred[0] = 100.0  # an outlier
        mse = MSELoss()(Tensor(pred), target).item()
        huber = SmoothL1Loss(beta=1.0)(Tensor(pred), target).item()
        assert huber < mse

    def test_losses_are_differentiable(self, rng):
        for loss_factory in (MSELoss, MAELoss, lambda: SmoothL1Loss(beta=0.5)):
            loss_fn = loss_factory()
            check_gradients(
                lambda t, fn=loss_fn: fn(t[0], t[1]),
                [rng.standard_normal((4,)) + 3, rng.standard_normal((4,))],
            )


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((3, 5))
        targets = np.array([0, 2, 4])
        loss = CrossEntropyLoss()(Tensor(logits), targets)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        manual = -np.mean(np.log(probabilities[np.arange(3), targets]))
        assert loss.item() == pytest.approx(manual, rel=1e-4)

    def test_confident_correct_prediction_has_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss = CrossEntropyLoss()(Tensor(logits), np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_gradient_flows(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        CrossEntropyLoss()(logits, np.array([0, 1, 2, 0])).backward()
        assert logits.grad is not None
        # Gradient rows sum to ~0 (softmax minus one-hot property).
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(4), atol=1e-5)


class TestSymmetricContrastiveLoss:
    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            SymmetricContrastiveLoss(temperature=0.0)

    def test_logits_shape(self, rng):
        loss_fn = SymmetricContrastiveLoss()
        logits = loss_fn.logits(Tensor(rng.standard_normal((6, 9))), Tensor(rng.standard_normal((6, 9))))
        assert logits.shape == (6, 6)

    def test_aligned_pairs_give_lower_loss_than_misaligned(self, rng):
        loss_fn = SymmetricContrastiveLoss()
        base = rng.standard_normal((8, 16)).astype(np.float32)
        aligned = loss_fn(Tensor(base), Tensor(base.copy())).item()
        shuffled = loss_fn(Tensor(base), Tensor(base[::-1].copy())).item()
        assert aligned < shuffled

    def test_symmetric_in_arguments(self, rng):
        loss_fn = SymmetricContrastiveLoss()
        a = Tensor(rng.standard_normal((5, 8)))
        b = Tensor(rng.standard_normal((5, 8)))
        assert loss_fn(a, b).item() == pytest.approx(loss_fn(b, a).item(), rel=1e-4)

    def test_identical_embeddings_approach_lower_bound(self, rng):
        # With identical, well-separated embeddings the loss approaches 0.
        base = np.eye(8, 16, dtype=np.float32) * 10
        loss = SymmetricContrastiveLoss(temperature=0.07)(Tensor(base), Tensor(base.copy()))
        assert loss.item() < 0.05

    def test_gradients_flow_to_both_encoders(self, rng):
        a = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        SymmetricContrastiveLoss()(a, b).backward()
        assert a.grad is not None and b.grad is not None
