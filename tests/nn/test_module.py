"""Tests for the Module / Parameter / state-dict machinery."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, Tensor


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=np.random.default_rng(0))
        self.second = Linear(8, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones((1,), dtype=np.float32))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestRegistration:
    def test_named_parameters_are_qualified(self):
        model = TinyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        model = TinyModel()
        assert model.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2) + 1

    def test_named_modules(self):
        model = TinyModel()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "first" in names and "second" in names

    def test_module_list_registers_items(self):
        container = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(container) == 2
        assert len(container.parameters()) == 4
        assert container[0] is list(iter(container))[0]

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(Tensor(np.zeros((1, 2))))


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Linear(2, 2))
        model.eval()
        assert all(not layer.training for layer in model)
        model.train()
        assert all(layer.training for layer in model)

    def test_zero_grad_clears(self):
        model = TinyModel()
        out = model(Tensor(np.random.randn(3, 4).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        model_a = TinyModel()
        model_b = TinyModel()
        model_b.load_state_dict(model_a.state_dict())
        for (_, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = TinyModel()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == pytest.approx(1.0)

    def test_missing_key_raises(self):
        model = TinyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = TinyModel()
        state = model.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TinyModel()
        state = model.state_dict()
        state["scale"] = np.zeros((5,))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
