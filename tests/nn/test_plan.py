"""Tests for compiled graph-free inference plans (``repro.nn.plan``)."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import BasePredictor, LiPFormer
from repro.nn import AdamW, InferencePlan, PlanUnsupported, Tensor, no_grad
from repro.nn.plan import CompiledPredictor


@pytest.fixture
def plain_config():
    return ModelConfig(
        input_length=48, horizon=12, n_channels=3, patch_length=12,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=3,
    )


@pytest.fixture
def covariate_config():
    return ModelConfig(
        input_length=48, horizon=12, n_channels=3, patch_length=12,
        hidden_dim=16, dropout=0.0, covariate_numerical_dim=4,
        covariate_categorical_cardinalities=(24, 7), covariate_embed_dim=2,
        covariate_hidden_dim=8, seed=3,
    )


def _covariates(rng, batch, config):
    fn = rng.normal(size=(batch, config.horizon, config.covariate_numerical_dim)).astype(np.float32)
    fc = np.stack(
        [
            rng.integers(0, card, size=(batch, config.horizon))
            for card in config.covariate_categorical_cardinalities
        ],
        axis=-1,
    )
    return fn, fc


class TestInferencePlan:
    def test_trace_replays_bit_identical_on_fresh_inputs(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        x = rng.normal(size=(4, 48, 3)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        for _ in range(3):
            fresh = rng.normal(size=(4, 48, 3)).astype(np.float32)
            assert np.array_equal(plan.run(fresh), model.predict(fresh))

    def test_plan_output_buffer_is_reused_across_runs(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        first = plan.run(x, copy=False)
        second = plan.run(rng.normal(size=(2, 48, 3)).astype(np.float32), copy=False)
        assert first is second  # steady state: zero new output allocations
        assert plan.arena_nbytes > 0

    def test_run_rejects_wrong_shape_and_signature(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        with pytest.raises(ValueError, match="input shape"):
            plan.run(rng.normal(size=(3, 48, 3)).astype(np.float32))
        with pytest.raises(ValueError, match="covariate signature"):
            plan.run(x, future_numerical=np.zeros((2, 12, 4), dtype=np.float32))

    def test_covariate_plan_follows_fresh_categorical_indices(self, covariate_config, rng):
        """Embedding gathers must re-read the categorical input buffer."""
        model = LiPFormer(covariate_config).eval()
        # The vector mapping is zero-initialised (no guidance until trained);
        # give it weight so covariate values actually reach the forecast.
        model.vector_mapping.weight.data[...] = rng.normal(
            size=model.vector_mapping.weight.shape
        ).astype(np.float32)
        x = rng.normal(size=(4, 48, 3)).astype(np.float32)
        fn, fc = _covariates(rng, 4, covariate_config)
        plan = InferencePlan.trace(model, x, fn, fc)
        fn2, fc2 = _covariates(rng, 4, covariate_config)
        expected = model.predict(x, future_numerical=fn2, future_categorical=fc2)
        assert np.array_equal(plan.run(x, fn2, fc2), expected)
        # Covariates must actually matter, or the test proves nothing.
        assert not np.array_equal(expected, model.predict(x, future_numerical=fn, future_categorical=fc))

    def test_replay_rejects_out_of_range_categorical_indices(self, covariate_config, rng):
        """Eager raises for index sentinels like -1; a replayed plan must
        too, not silently gather wrapped embedding rows."""
        model = LiPFormer(covariate_config).eval()
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        fn, fc = _covariates(rng, 2, covariate_config)
        plan = InferencePlan.trace(model, x, fn, fc)
        bad = fc.copy()
        bad[0, 0, 0] = -1
        with pytest.raises(IndexError, match="embedding index out of range"):
            model.predict(x, future_numerical=fn, future_categorical=bad)
        with pytest.raises(IndexError, match="embedding index out of range"):
            plan.run(x, fn, bad)
        # A valid follow-up request still replays correctly.
        assert np.array_equal(
            plan.run(x, fn, fc), model.predict(x, future_numerical=fn, future_categorical=fc)
        )

    def test_trace_requires_eval_mode(self, plain_config, rng):
        model = LiPFormer(plain_config)  # training=True
        with pytest.raises(PlanUnsupported, match="eval"):
            InferencePlan.trace(model, rng.normal(size=(2, 48, 3)).astype(np.float32))

    def test_base_predictor_traces_too(self, plain_config, rng):
        model = BasePredictor(plain_config).eval()
        x = rng.normal(size=(3, 48, 3)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        fresh = rng.normal(size=(3, 48, 3)).astype(np.float32)
        assert np.array_equal(plan.run(fresh), model.predict(fresh))

    def test_plan_is_stale_after_parameter_rebind(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        assert not plan.is_stale()
        param = model.parameters()[0]
        param.data = param.data * 2.0
        assert plan.is_stale()


class TestParameterVersion:
    def test_rebind_bumps_version_in_place_write_does_not(self, plain_config):
        model = LiPFormer(plain_config)
        param = model.parameters()[0]
        before = param.version
        param.data[...] = 0.5           # in-place: plans read through, no bump
        assert param.version == before
        param.data = param.data * 2.0   # rebind: bump
        assert param.version == before + 1

    def test_load_state_dict_bumps_every_parameter(self, plain_config):
        model = LiPFormer(plain_config)
        before = model.parameter_version()
        model.load_state_dict(model.state_dict())
        after = model.parameter_version()
        assert after == before + len(model.parameters())

    def test_optimizer_step_bumps_versions(self, plain_config, rng):
        model = LiPFormer(plain_config)
        optimizer = AdamW(model.parameters(), lr=1e-3)
        x = Tensor(rng.normal(size=(2, 48, 3)).astype(np.float32))
        loss = (model(x) * model(x)).mean()
        loss.backward()
        before = model.parameter_version()
        optimizer.step()
        assert model.parameter_version() > before


class TestCompiledPredictor:
    def test_predict_matches_eager_across_bucketed_batches(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        predictor = CompiledPredictor(model, max_batch=8)
        for batch in (1, 2, 4):
            x = rng.normal(size=(batch, 48, 3)).astype(np.float32)
            assert np.array_equal(predictor.predict(x), model.predict(x))   # trace
            assert np.array_equal(predictor.predict(x), model.predict(x))   # replay
        # Each ascending power-of-two batch traced its bucket, but a
        # sliceable bucket plan subsumes every smaller one: one plan left.
        assert len(predictor) == 1
        assert predictor.traces == 3 and predictor.hits == 3
        # A batch strictly inside the warm bucket needs no new trace.
        x = rng.normal(size=(3, 48, 3)).astype(np.float32)
        assert np.array_equal(predictor.predict(x), model.predict(x))
        assert predictor.traces == 3 and predictor.hits == 4

    def test_warm_at_max_batch_serves_all_batches_from_one_plan(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        predictor = CompiledPredictor(model, max_batch=8)
        predictor.predict(rng.normal(size=(8, 48, 3)).astype(np.float32))
        for batch in range(1, 9):
            x = rng.normal(size=(batch, 48, 3)).astype(np.float32)
            assert np.array_equal(predictor.predict(x), model.predict(x))
        assert predictor.traces == 1 and len(predictor) == 1

    def test_lru_eviction_bounds_the_cache(self, covariate_config, rng):
        # The cache key is batch-free, so eviction is exercised through two
        # distinct covariate *signatures* on the same model.
        model = LiPFormer(covariate_config).eval()
        predictor = CompiledPredictor(model, capacity=1)
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        fn, fc = _covariates(rng, 2, covariate_config)
        predictor.predict(x, fn, fc)
        predictor.predict(x)                       # plain signature evicts it
        assert len(predictor) == 1
        assert predictor.plan_for(x, fn, fc) is None
        assert predictor.plan_for(x) is not None

    def test_stale_plan_retraced_after_load_state(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        predictor = CompiledPredictor(model)
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        predictor.predict(x)
        state = {name: value * 1.5 for name, value in model.state_dict().items()}
        model.load_state_dict(state)
        assert np.array_equal(predictor.predict(x), model.predict(x))
        assert predictor.invalidations == 1 and predictor.traces == 2

    def test_training_mode_miss_does_not_poison_the_cache(self, plain_config, rng):
        model = LiPFormer(plain_config)  # training=True
        predictor = CompiledPredictor(model)
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        assert predictor.predict(x) is None
        assert predictor.needs_eval_trace
        model.eval()
        assert predictor.predict(x) is not None

    def test_failed_trace_retried_after_weight_change(self, plain_config, rng):
        """A transient trace failure must not disable the compiled path
        forever: a parameter rebind retires the unsupported marker."""
        model = LiPFormer(plain_config).eval()
        predictor = CompiledPredictor(model)
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)

        original_forward = model.forward
        model.forward = lambda *a, **k: original_forward(*a, **k).data  # not a Tensor
        assert predictor.predict(x) is None
        assert predictor.predict(x) is None       # marker hit, no re-trace
        assert predictor.fallbacks == 2 and predictor.traces == 0

        model.forward = original_forward
        assert predictor.predict(x) is None       # weights unchanged: still marked
        param = model.parameters()[0]
        param.data = param.data.copy()            # rebind retires the marker
        assert np.array_equal(predictor.predict(x), model.predict(x))
        assert predictor.traces == 1

    def test_unsupported_markers_do_not_evict_live_plans(self, plain_config, rng):
        model = LiPFormer(plain_config).eval()
        predictor = CompiledPredictor(model, capacity=2)
        good = [rng.normal(size=(n, 48, 3)).astype(np.float32) for n in (1, 2)]
        for x in good:
            predictor.predict(x)
        original_forward = model.forward
        model.forward = lambda *a, **k: original_forward(*a, **k).data
        for n in (3, 4, 5):
            assert predictor.predict(rng.normal(size=(n, 48, 3)).astype(np.float32)) is None
        model.forward = original_forward
        # The bucket-2 plan subsumed bucket 1, so one live plan remains —
        # and the markers consumed no plan slots.
        assert len(predictor) == 1
        for x in good:
            assert predictor.plan_for(x) is not None

    def test_run_rejects_wrong_covariate_shape(self, covariate_config, rng):
        model = LiPFormer(covariate_config).eval()
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        fn, fc = _covariates(rng, 2, covariate_config)
        plan = InferencePlan.trace(model, x, fn, fc)
        with pytest.raises(ValueError, match="future_numerical shape"):
            plan.run(x, fn[..., :1], fc)          # would broadcast silently
        with pytest.raises(ValueError, match="future_categorical shape"):
            plan.run(x, fn, fc[:1])

    def test_unsupported_model_predict_falls_back_to_eager(self, plain_config, rng):
        model = BasePredictor(plain_config)
        model.supports_compiled_plan = False
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        out = model.predict(x, compiled=True)
        assert out.shape == (2, 12, 3)
        assert getattr(model, "_compiled", None) is None  # never built a cache


class TestModelPredictCompiled:
    def test_predict_compiled_from_training_mode_restores_flag(self, plain_config, rng):
        model = LiPFormer(plain_config)
        assert model.training
        x = rng.normal(size=(2, 48, 3)).astype(np.float32)
        compiled = model.predict(x, compiled=True)
        assert model.training  # flag restored after the eval-mode trace
        assert np.array_equal(compiled, model.predict(x))

    def test_trainer_fit_invalidates_plans(self, etth1_smoke_data, training_config):
        from repro.training import Trainer

        config = ModelConfig(
            input_length=etth1_smoke_data.input_length,
            horizon=etth1_smoke_data.horizon,
            n_channels=etth1_smoke_data.n_channels,
            patch_length=12, hidden_dim=16, dropout=0.0,
        )
        model = LiPFormer(config)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, config.input_length, config.n_channels)).astype(np.float32)
        before = model.predict(x, compiled=True)
        predictor = model.compiled_predictor()
        assert predictor.traces == 1

        Trainer(model, training_config).fit(etth1_smoke_data)

        plan = predictor.plan_for(x)
        assert plan is not None and plan.is_stale()
        after_eager = model.predict(x)
        after_compiled = model.predict(x, compiled=True)
        assert np.array_equal(after_compiled, after_eager)
        assert not np.array_equal(after_compiled, before)
        assert predictor.invalidations == 1


class TestNoGradFastPath:
    def test_no_grad_ops_record_no_parents_or_backward(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        with no_grad():
            for out in (a + b, a * b, a @ b.transpose(), a.exp(), a.sum(), (a - b), a.relu()):
                assert out._prev == ()
                assert out._backward is None
                assert not out.requires_grad

    def test_no_grad_results_retain_no_reference_to_operands(self, rng):
        """The fast path must not capture parents in closures (GC pressure
        and reference cycles in long-running services)."""
        import weakref

        a = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        with no_grad():
            out = a * 2.0 + 1.0
        # Tensors are slotted (no __weakref__); probe through the operand's
        # backing array, which dies with it unless a closure captured it.
        ref = weakref.ref(a.data)
        del a
        assert ref() is None, "no_grad result kept its operand alive"
        assert out.shape == (8, 8)

    def test_grad_path_still_records_graph(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = (a * a).sum()
        assert out._backward is not None and out._prev != ()
        out.backward()
        assert a.grad is not None
