"""Tests for repro.nn.layers and attention modules."""

import numpy as np
import pytest

from repro.nn import (
    GELU,
    Dropout,
    Embedding,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    ReLU,
    ResidualSelfAttention,
    SelfAttention,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((5, 8)))).shape == (5, 3)

    def test_batched_input(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 7, 8)))).shape == (2, 7, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_registered(self, rng):
        layer = Linear(4, 2, rng=rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 4 * 2 + 2

    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5, atol=1e-6)


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_mode_zeroes(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).mean() > 0.3


class TestLayerNorm:
    def test_normalises_last_dim(self, rng):
        layer = LayerNorm(12)
        out = layer(Tensor(rng.standard_normal((5, 12)) * 4 + 2))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-4)

    def test_parameters(self):
        layer = LayerNorm(12)
        assert layer.num_parameters() == 24


class TestEmbedding:
    def test_lookup_shape(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_same_index_same_vector(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer(np.array([3, 3]))
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_out_of_range_raises(self, rng):
        layer = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            layer(np.array([5]))
        with pytest.raises(IndexError):
            layer(np.array([-1]))

    def test_gradient_reaches_embedding_rows(self, rng):
        layer = Embedding(5, 3, rng=rng)
        out = layer(np.array([1, 1, 2]))
        out.sum().backward()
        grad = layer.weight.grad
        np.testing.assert_allclose(grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(grad[2], np.ones(3))
        np.testing.assert_allclose(grad[0], np.zeros(3))


class TestActivationsAndContainers:
    def test_activation_modules(self, rng):
        x = Tensor(rng.standard_normal((3, 3)))
        assert GELU()(x).shape == x.shape
        assert ReLU()(x).shape == x.shape
        assert Tanh()(x).shape == x.shape
        assert Sigmoid()(x).shape == x.shape
        np.testing.assert_allclose(Identity()(x).data, x.data)

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.standard_normal((4, 3, 2))))
        assert out.shape == (4, 6)

    def test_sequential_composition(self, rng):
        model = Sequential(Linear(6, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        assert model(Tensor(rng.standard_normal((5, 6)))).shape == (5, 2)
        assert len(model) == 3
        assert len(model.parameters()) == 4

    def test_sequential_iterable(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), ReLU())
        assert len(list(iter(model))) == 2


class TestAttentionModules:
    def test_self_attention_shape(self, rng):
        attn = SelfAttention(8, rng=rng)
        assert attn(Tensor(rng.standard_normal((2, 5, 8)))).shape == (2, 5, 8)

    def test_residual_self_attention_contains_input(self, rng):
        attn = ResidualSelfAttention(8, rng=rng)
        attn.eval()
        x = Tensor(rng.standard_normal((2, 5, 8)))
        out = attn(x)
        # residual: output minus attention equals input
        inner = attn.attention(x)
        np.testing.assert_allclose(out.data, (inner + x).data, rtol=1e-5)

    def test_multi_head_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        assert attn(Tensor(rng.standard_normal((3, 6, 16)))).shape == (3, 6, 16)

    def test_multi_head_invalid_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_multi_head_gradients_flow(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        for parameter in attn.parameters():
            assert parameter.grad is not None
