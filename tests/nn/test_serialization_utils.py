"""Tests for serialization, seeding, gradient clipping and init helpers."""

import os

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    Tensor,
    clip_grad_norm,
    load_module,
    load_state,
    save_module,
    save_state,
    seed_everything,
)
from repro.nn import init


class TestSerialization:
    def test_state_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "weights.npz")
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.ones(4)}
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_module_round_trip(self, tmp_path, rng):
        path = os.path.join(tmp_path, "model.npz")
        model = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        save_module(model, path)
        other = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        load_module(other, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, other(x).data, rtol=1e-6)

    def test_save_creates_directories(self, tmp_path):
        path = os.path.join(tmp_path, "nested", "dir", "weights.npz")
        save_state({"a": np.zeros(2)}, path)
        assert os.path.exists(path)


class TestSeeding:
    def test_seed_everything_reproducible(self):
        rng_a = seed_everything(99)
        rng_b = seed_everything(99)
        np.testing.assert_allclose(rng_a.standard_normal(5), rng_b.standard_normal(5))

    def test_different_seeds_differ(self):
        a = seed_everything(1).standard_normal(5)
        b = seed_everything(2).standard_normal(5)
        assert not np.allclose(a, b)


class TestClipGradNorm:
    def test_no_gradients_returns_zero(self, rng):
        model = Linear(3, 3, rng=rng)
        assert clip_grad_norm(model, 1.0) == 0.0

    def test_clipping_reduces_norm(self, rng):
        model = Linear(3, 3, rng=rng)
        (model(Tensor(rng.standard_normal((10, 3)) * 100)) ** 2).sum().backward()
        pre_norm = clip_grad_norm(model, 1.0)
        assert pre_norm > 1.0
        post_norm = float(
            np.sqrt(sum(float((p.grad**2).sum()) for p in model.parameters() if p.grad is not None))
        )
        assert post_norm == pytest.approx(1.0, rel=1e-4)

    def test_small_gradients_untouched(self, rng):
        model = Linear(3, 1, rng=rng)
        (model(Tensor(rng.standard_normal((2, 3)) * 1e-3)).sum()).backward()
        grads_before = [p.grad.copy() for p in model.parameters()]
        clip_grad_norm(model, 10.0)
        for before, parameter in zip(grads_before, model.parameters()):
            np.testing.assert_allclose(before, parameter.grad)


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        weights = init.xavier_uniform((64, 32), rng=rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert weights.shape == (64, 32)
        assert np.all(np.abs(weights) <= bound + 1e-6)

    def test_xavier_normal_scale(self, rng):
        weights = init.xavier_normal((200, 100), rng=rng)
        expected_std = np.sqrt(2.0 / 300)
        assert weights.std() == pytest.approx(expected_std, rel=0.15)

    def test_kaiming_uniform_bounds(self, rng):
        weights = init.kaiming_uniform((16, 64), rng=rng)
        bound = np.sqrt(6.0 / 64)
        assert np.all(np.abs(weights) <= bound + 1e-6)

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros_((3, 3)), np.zeros((3, 3)))

    def test_uniform_range(self, rng):
        weights = init.uniform_((100,), -0.2, 0.3, rng=rng)
        assert weights.min() >= -0.2 and weights.max() < 0.3
