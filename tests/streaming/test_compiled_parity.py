"""Compiled serving through the streaming stack: parity with eager replay."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster, compare_to_backfill, replay


@pytest.fixture
def config():
    return ModelConfig(
        input_length=32, horizon=8, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, seed=21,
    )


def make_streams(rng, n_tenants, steps, channels=2):
    streams = {}
    t = np.arange(steps, dtype=np.float32)
    for i in range(n_tenants):
        seasonal = np.sin(2 * np.pi * (t / 20.0 + i / max(1, n_tenants)))[:, None]
        noise = rng.normal(scale=0.25, size=(steps, channels))
        streams[f"tenant-{i}"] = ((i + 1) * seasonal + noise).astype(np.float32)
    return streams


class TestCompiledStreamingParity:
    def test_compiled_replay_bit_identical_to_eager_replay(self, config, rng):
        """The full streaming stack produces identical forecasts whether the
        service runs compiled plans or eager autograd-free forwards."""
        model = LiPFormer(config)
        streams = make_streams(rng, 4, 56)
        results = {}
        for name, compiled in (("compiled", True), ("eager", False)):
            service = ForecastService(model, max_batch_size=8, compiled=compiled)
            forecaster = StreamingForecaster(service)
            results[name] = replay(forecaster, streams, warmup=config.input_length)
        for tenant in streams:
            assert np.array_equal(
                results["compiled"].forecasts[tenant], results["eager"].forecasts[tenant]
            )
        assert model.compiled_predictor().hits > 0  # plans actually served

    def test_compiled_replay_passes_backfill_parity_harness(self, config, rng):
        """The existing acceptance oracle, run with compiled serving on."""
        service = ForecastService(LiPFormer(config), max_batch_size=8, compiled=True)
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, 3, 52)
        result = replay(forecaster, streams, warmup=config.input_length)
        report = compare_to_backfill(forecaster, streams, result)
        report.raise_on_mismatch()
        assert report.bit_identical

    def test_warmup_removes_first_tick_tracing(self, config, rng):
        model = LiPFormer(config)
        service = ForecastService(model, max_batch_size=4, compiled=True)
        forecaster = StreamingForecaster(service)
        assert forecaster.warmup(batch_sizes=(3,)) == 1
        predictor = model.compiled_predictor()
        traced = predictor.traces
        streams = make_streams(rng, 3, config.input_length + 2)
        replay(forecaster, streams, warmup=config.input_length)
        # The 3-tenant flush shape was pre-traced: every tick was a plan hit.
        assert predictor.traces == traced
        assert predictor.hits > 0
