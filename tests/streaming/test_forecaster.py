"""Tests for the multi-tenant StreamingForecaster."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import SeriesStore, StreamingForecaster


@pytest.fixture
def config():
    return ModelConfig(
        input_length=32, horizon=8, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service(config):
    return ForecastService(LiPFormer(config), max_batch_size=8)


@pytest.fixture
def forecaster(service):
    return StreamingForecaster(service)


def stream(rng, steps, channels=2, scale=1.0, offset=0.0):
    return (rng.normal(size=(steps, channels)) * scale + offset).astype(np.float32)


class TestIngestAndForecast:
    def test_forecast_uses_latest_window(self, forecaster, service, rng):
        values = stream(rng, 50)
        forecaster.ingest("a", values)
        forecast = forecaster.forecast("a").result()
        expected = service.model.predict(values[-32:][None])[0]
        np.testing.assert_array_equal(forecast, expected)

    def test_incremental_ingest_matches_bulk(self, forecaster, service, rng):
        values = stream(rng, 40)
        for row in values:
            forecaster.ingest("a", row)
        np.testing.assert_array_equal(
            forecaster.forecast("a").result(),
            service.model.predict(values[-32:][None])[0],
        )

    def test_cold_start_is_left_padded(self, forecaster, rng):
        forecaster.ingest("new", stream(rng, 5))
        forecast = forecaster.forecast("new")
        assert forecast.result().shape == (8, 2)
        assert forecaster.stats.cold_start_forecasts == 1
        assert forecaster.service.stats.padded_requests == 1

    def test_forecast_unknown_tenant_raises(self, forecaster):
        with pytest.raises(KeyError):
            forecaster.forecast("ghost")

    def test_ingest_side_counters_live_on_the_store(self, forecaster, rng):
        forecaster.ingest("a", stream(rng, 10))
        forecaster.ingest("b", stream(rng, 3))
        forecaster.ingest("a", stream(rng, 2))
        assert forecaster.store.stats.tenants == 2
        assert forecaster.store.stats.observations == 15
        assert forecaster.store.stats.ingests == 3


class TestMicroBatching:
    def test_forecast_all_coalesces_tenants(self, forecaster, service, rng):
        for i in range(5):
            forecaster.ingest(f"t{i}", stream(rng, 40))
        passes_before = service.stats.forward_passes
        handles = forecaster.forecast_all()
        assert set(handles) == {f"t{i}" for i in range(5)}
        assert all(h.done() for h in handles.values())
        assert service.stats.forward_passes == passes_before + 1, (
            "five tenants must share one forward pass"
        )

    def test_forecast_all_without_flush_leaves_queue(self, forecaster, service, rng):
        for i in range(3):
            forecaster.ingest(f"t{i}", stream(rng, 40))
        handles = forecaster.forecast_all(flush=False)
        assert service.pending == 3
        assert not any(h.done() for h in handles.values())
        forecaster.flush()
        assert all(h.done() for h in handles.values())

    def test_ingest_and_forecast_tick(self, forecaster, rng):
        arrivals = {f"t{i}": stream(rng, 40) for i in range(3)}
        handles = forecaster.ingest_and_forecast(arrivals)
        assert all(h.done() for h in handles.values())
        assert all(h.result().shape == (8, 2) for h in handles.values())


class TestNormalization:
    def test_rolling_mode_standardises_and_denormalises(self, service, rng):
        forecaster = StreamingForecaster(service, normalization="rolling")
        values = stream(rng, 48, scale=50.0, offset=300.0)
        forecaster.ingest("a", values)
        forecast = forecaster.forecast("a").result()

        scaler = forecaster.scaler("a")
        np.testing.assert_allclose(scaler.mean_, values.astype(np.float64).mean(axis=0), rtol=1e-9)
        expected = scaler.inverse_transform(
            service.model.predict(scaler.transform(values[-32:])[None])[0]
        )
        np.testing.assert_allclose(forecast, expected, rtol=1e-12)
        # forecasts come back near the tenant's operating level, not near 0
        assert abs(float(forecast.mean()) - 300.0) < 150.0

    def test_rolling_denormalisation_frozen_at_submit_time(self, service, rng):
        """Later ingests must not change how a queued forecast resolves."""
        forecaster = StreamingForecaster(service, normalization="rolling")
        values = stream(rng, 40, scale=5.0, offset=10.0)
        forecaster.ingest("a", values)
        scaler_at_submit = forecaster.scaler("a").to_standard_scaler()
        handle = forecaster.forecast("a")
        forecaster.ingest("a", stream(rng, 30, scale=5.0, offset=5000.0))  # regime shift
        expected = scaler_at_submit.inverse_transform(
            service.model.predict(scaler_at_submit.transform(values[-32:])[None])[0]
        )
        np.testing.assert_allclose(handle.result(), expected, rtol=1e-12)

    def test_last_value_mode_matches_manual_anchor(self, service, rng):
        forecaster = StreamingForecaster(service, normalization="last_value")
        values = stream(rng, 40, offset=20.0)
        forecaster.ingest("a", values)
        window = values[-32:]
        anchor = window[-1:]
        expected = service.model.predict((window - anchor)[None])[0] + anchor
        np.testing.assert_array_equal(forecaster.forecast("a").result(), expected)

    def test_separate_tenants_keep_separate_statistics(self, service, rng):
        forecaster = StreamingForecaster(service, normalization="rolling")
        forecaster.ingest("low", stream(rng, 40, offset=1.0))
        forecaster.ingest("high", stream(rng, 40, offset=1000.0))
        assert forecaster.scaler("low").mean_[0] < 10
        assert forecaster.scaler("high").mean_[0] > 900

    def test_unknown_normalization_rejected(self, service):
        with pytest.raises(ValueError, match="normalization"):
            StreamingForecaster(service, normalization="zscore")


class TestDrop:
    def test_drop_clears_buffer_watermark_and_scaler(self, service, rng):
        forecaster = StreamingForecaster(service, normalization="rolling")
        forecaster.ingest("a", stream(rng, 40, offset=1000.0), timestamp=7)
        assert forecaster.scaler("a") is not None
        forecaster.drop("a")
        assert "a" not in forecaster.store
        assert forecaster.store.last_timestamp("a") is None
        assert forecaster.scaler("a") is None, "dropped tenants must not leak scaler state"

    def test_reingested_tenant_starts_with_fresh_statistics(self, service, rng):
        """A re-created tenant must not resume a dead tenant's statistics."""
        forecaster = StreamingForecaster(service, normalization="rolling")
        forecaster.ingest("a", stream(rng, 40, offset=1000.0))
        forecaster.drop("a")
        forecaster.ingest("a", stream(rng, 40, offset=1.0), timestamp=1)  # watermark reset too
        assert forecaster.scaler("a").n_seen == 40
        assert abs(float(forecaster.scaler("a").mean_[0])) < 10.0

    def test_drop_unknown_tenant_is_a_no_op(self, forecaster):
        forecaster.drop("ghost")


class TestFutureCovariates:
    @pytest.fixture
    def cov_service(self):
        config = ModelConfig(
            input_length=32, horizon=8, n_channels=2, patch_length=8,
            hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
            covariate_numerical_dim=3, covariate_categorical_cardinalities=(24, 7),
            covariate_embed_dim=2, covariate_hidden_dim=8,
        )
        model = LiPFormer(config)
        # The guidance head is zero-initialised (residual gating), so an
        # untrained model ignores covariates; nudge it so threading shows.
        model.vector_mapping.weight.data[...] = 0.05
        return ForecastService(model, max_batch_size=8)

    def covariates(self, rng, horizon=8):
        numerical = rng.normal(size=(horizon, 3)).astype(np.float32)
        categorical = np.stack(
            [rng.integers(0, 24, size=horizon), rng.integers(0, 7, size=horizon)], axis=1
        ).astype(np.int64)
        return numerical, categorical

    def test_forecast_threads_covariates_through_submit(self, cov_service, rng):
        forecaster = StreamingForecaster(cov_service)
        values = stream(rng, 40)
        forecaster.ingest("a", values)
        numerical, categorical = self.covariates(rng)
        produced = forecaster.forecast(
            "a", future_numerical=numerical, future_categorical=categorical
        ).result()
        expected = cov_service.model.predict(
            values[-32:][None],
            future_numerical=numerical[None],
            future_categorical=categorical[None],
        )[0]
        np.testing.assert_array_equal(produced, expected)
        # and covariates actually changed the forecast vs. history-only
        base = cov_service.model.predict(values[-32:][None])[0]
        assert not np.array_equal(produced, base)

    def test_forecast_all_per_tenant_covariate_mappings(self, cov_service, rng):
        forecaster = StreamingForecaster(cov_service)
        windows = {}
        for i in range(3):
            windows[f"t{i}"] = stream(rng, 40)
            forecaster.ingest(f"t{i}", windows[f"t{i}"])
        numerical, categorical = self.covariates(rng)
        handles = forecaster.forecast_all(
            future_numerical={"t1": numerical}, future_categorical={"t1": categorical}
        )
        expected = cov_service.model.predict(
            windows["t1"][-32:][None],
            future_numerical=numerical[None],
            future_categorical=categorical[None],
        )[0]
        np.testing.assert_array_equal(handles["t1"].result(), expected)
        # tenants absent from the mappings stay history-only
        history_only = cov_service.model.predict(windows["t0"][-32:][None])[0]
        np.testing.assert_array_equal(handles["t0"].result(), history_only)

    def test_covariates_compose_with_normalization(self, cov_service, rng):
        forecaster = StreamingForecaster(cov_service, normalization="last_value")
        values = stream(rng, 40, offset=25.0)
        forecaster.ingest("a", values)
        numerical, categorical = self.covariates(rng)
        produced = forecaster.forecast(
            "a", future_numerical=numerical, future_categorical=categorical
        ).result()
        window = values[-32:]
        anchor = window[-1:]
        expected = cov_service.model.predict(
            (window - anchor)[None],
            future_numerical=numerical[None],
            future_categorical=categorical[None],
        )[0] + anchor
        np.testing.assert_array_equal(produced, expected)

    def test_invalid_covariate_shape_raises_at_submit(self, cov_service, rng):
        forecaster = StreamingForecaster(cov_service)
        forecaster.ingest("a", stream(rng, 40))
        with pytest.raises(ValueError, match="future_numerical"):
            forecaster.forecast("a", future_numerical=np.zeros((8, 99), dtype=np.float32))


class TestConstruction:
    def test_capacity_must_hold_one_window(self, service):
        with pytest.raises(ValueError, match="window_capacity"):
            StreamingForecaster(service, window_capacity=8)
        with pytest.raises(ValueError, match="window_capacity"):
            StreamingForecaster(service, window_capacity=0)  # not the default

    def test_store_channel_mismatch_rejected(self, service):
        with pytest.raises(ValueError, match="channels"):
            StreamingForecaster(service, store=SeriesStore(capacity=64, n_channels=5))

    def test_default_store_capacity(self, forecaster):
        assert forecaster.store.capacity == 4 * 32
