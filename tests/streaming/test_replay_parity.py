"""Streaming/offline parity: replayed forecasts must equal backfill bit-for-bit."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.data.containers import MultivariateTimeSeries
from repro.data.timefeatures import make_timestamps
from repro.data.windows import SlidingWindowDataset
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster, compare_to_backfill, replay


@pytest.fixture
def config():
    return ModelConfig(
        input_length=32, horizon=8, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service(config):
    return ForecastService(LiPFormer(config), max_batch_size=16)


def make_streams(rng, n_tenants, steps, channels=2):
    """Distinct synthetic tenants: different phases, scales and noise."""
    streams = {}
    t = np.arange(steps, dtype=np.float32)
    for i in range(n_tenants):
        seasonal = np.sin(2 * np.pi * (t / 24.0 + i / n_tenants))[:, None]
        noise = rng.normal(scale=0.3, size=(steps, channels))
        streams[f"tenant-{i}"] = ((i + 1) * seasonal + noise).astype(np.float32)
    return streams


class TestReplayParity:
    def test_streaming_matches_backfill_bit_identical(self, service, rng):
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, n_tenants=4, steps=64)
        result = replay(forecaster, streams)
        report = compare_to_backfill(forecaster, streams, result)
        assert report.windows_compared == 4 * (64 - 32 - 8 + 1)
        assert report.bit_identical, f"max |Δ| = {report.max_abs_error}"
        report.raise_on_mismatch()

    def test_replay_coalesces_concurrent_tenants(self, service, rng):
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, n_tenants=6, steps=48)
        result = replay(forecaster, streams)
        # After warmup, all six tenants forecast on every tick and must
        # share forward passes: mean batch size is the coalescing win.
        assert result.mean_batch_size > 1.0
        assert result.mean_batch_size == pytest.approx(6.0)
        assert result.requests == 6 * (48 - 32 + 1)

    def test_replay_with_ragged_stream_lengths(self, service, rng):
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, n_tenants=2, steps=64)
        streams["short"] = streams.pop("tenant-1")[:40]
        result = replay(forecaster, streams)
        assert len(result.forecasts["tenant-0"]) == 64 - 32 + 1
        assert len(result.forecasts["short"]) == 40 - 32 + 1
        compare_to_backfill(forecaster, streams, result).raise_on_mismatch()

    def test_replay_with_early_warmup_skips_cold_start_in_parity(self, service, rng):
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, n_tenants=2, steps=56)
        result = replay(forecaster, streams, warmup=16)   # 16 cold-start forecasts
        assert len(result.forecasts["tenant-0"]) == 56 - 16 + 1
        report = compare_to_backfill(forecaster, streams, result)
        assert report.bit_identical
        assert report.windows_compared == 2 * (56 - 32 - 8 + 1)

    def test_parity_requires_passthrough_normalization(self, service, rng):
        forecaster = StreamingForecaster(service, normalization="rolling")
        streams = make_streams(rng, n_tenants=2, steps=48)
        result = replay(forecaster, streams)
        with pytest.raises(ValueError, match="normalization"):
            compare_to_backfill(forecaster, streams, result)

    def test_replay_forecasts_match_per_window_predict(self, service, rng):
        """Spot-check the alignment claim directly against the dataset."""
        forecaster = StreamingForecaster(service)
        streams = make_streams(rng, n_tenants=1, steps=52)
        values = streams["tenant-0"]
        result = replay(forecaster, streams)
        series = MultivariateTimeSeries(
            values=values, timestamps=make_timestamps(len(values), freq_minutes=60)
        )
        dataset = SlidingWindowDataset(series, 32, 8)
        for k in (0, 5, len(dataset) - 1):
            expected = service.model.predict(dataset[k].x[None])[0]
            np.testing.assert_array_equal(result.forecasts["tenant-0"][k], expected)

    def test_parity_over_zero_windows_is_not_claimed(self, service, rng):
        """Streams too short for any offline window must not report parity."""
        forecaster = StreamingForecaster(service)
        streams = {"tiny": rng.normal(size=(35, 2)).astype(np.float32)}  # < 32+8
        result = replay(forecaster, streams)
        report = compare_to_backfill(forecaster, streams, result)
        assert report.windows_compared == 0
        assert not report.bit_identical
        with pytest.raises(AssertionError, match="zero windows"):
            report.raise_on_mismatch()

    def test_replay_rejects_bad_inputs(self, service, rng):
        forecaster = StreamingForecaster(service)
        with pytest.raises(ValueError, match="warmup"):
            replay(forecaster, {"a": rng.normal(size=(40, 2))}, warmup=0)
        with pytest.raises(ValueError, match="T, C"):
            replay(forecaster, {"a": rng.normal(size=(40,))})
