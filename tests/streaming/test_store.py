"""Tests for the ring buffer and multi-tenant series store."""

import numpy as np
import pytest

from repro.streaming import RingBuffer, SeriesStore


def rows(start, count, channels=2):
    """Distinct, recognisable [count, channels] rows."""
    base = np.arange(start, start + count, dtype=np.float32)
    return np.stack([base + 100 * c for c in range(channels)], axis=1)


class TestRingBuffer:
    def test_fill_and_latest_chronological(self):
        ring = RingBuffer(capacity=8, n_channels=2)
        ring.extend(rows(0, 5))
        assert len(ring) == 5
        np.testing.assert_array_equal(ring.latest(3), rows(2, 3))

    def test_wraparound_keeps_newest(self):
        ring = RingBuffer(capacity=8, n_channels=2)
        for start in range(0, 20, 3):          # chunks of 3 across the wrap point
            ring.extend(rows(start, 3))
        assert len(ring) == 8
        assert ring.total_appended == 21
        np.testing.assert_array_equal(ring.latest(8), rows(13, 8))

    def test_chunk_larger_than_capacity_keeps_tail(self):
        ring = RingBuffer(capacity=4, n_channels=2)
        ring.extend(rows(0, 2))
        ring.extend(rows(2, 10))
        np.testing.assert_array_equal(ring.latest(4), rows(8, 4))
        assert ring.total_appended == 12

    def test_no_reallocation_across_appends(self):
        ring = RingBuffer(capacity=6, n_channels=1)
        backing = ring._data
        for start in range(100):
            ring.extend(rows(start, 1, channels=1))
        assert ring._data is backing, "ring must never reallocate its backing array"

    def test_latest_clamps_to_size_and_copies(self):
        ring = RingBuffer(capacity=8, n_channels=2)
        ring.extend(rows(0, 3))
        window = ring.latest(10)
        assert window.shape == (3, 2)
        window[:] = -1                       # mutating the copy ...
        np.testing.assert_array_equal(ring.latest(3), rows(0, 3))  # ... leaves the ring intact

    def test_single_row_and_empty_append(self):
        ring = RingBuffer(capacity=4, n_channels=3)
        ring.extend(np.arange(3, dtype=np.float32))     # 1-D row
        ring.extend(np.zeros((0, 3), dtype=np.float32))
        assert len(ring) == 1 and ring.total_appended == 1

    def test_rejects_bad_shapes_and_sizes(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0, n_channels=1)
        ring = RingBuffer(capacity=4, n_channels=2)
        with pytest.raises(ValueError):
            ring.extend(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            ring.latest(-1)


class TestSeriesStore:
    def test_lazy_tenant_creation_and_isolation(self):
        store = SeriesStore(capacity=8, n_channels=2)
        store.ingest("a", rows(0, 4))
        store.ingest("b", rows(50, 2))
        assert store.tenants() == ["a", "b"]
        np.testing.assert_array_equal(store.latest("a", 4), rows(0, 4))
        np.testing.assert_array_equal(store.latest("b", 4), rows(50, 2))

    def test_ingest_returns_running_total(self):
        store = SeriesStore(capacity=4, n_channels=2)
        assert store.ingest("a", rows(0, 3)) == 3
        assert store.ingest("a", rows(3, 3)) == 6
        assert store.observed("a") == 6
        assert store.observed("missing") == 0

    def test_timestamps_must_increase_per_tenant(self):
        store = SeriesStore(capacity=8, n_channels=1)
        store.ingest("a", rows(0, 1, channels=1), timestamp=10)
        store.ingest("b", rows(0, 1, channels=1), timestamp=5)   # other tenant: fine
        store.ingest("a", rows(1, 1, channels=1), timestamp=11)
        with pytest.raises(ValueError, match="not after"):
            store.ingest("a", rows(2, 1, channels=1), timestamp=11)
        assert store.last_timestamp("a") == 11
        assert len(store.buffer("a")) == 2  # rejected rows were not appended

    def test_stats_track_evictions(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 3, channels=1))
        store.ingest("a", rows(3, 3, channels=1))
        assert store.stats.observations == 6
        assert store.stats.evicted == 2
        assert store.stats.tenants == 1
        assert store.stats.ingests == 2

    def test_drop_forgets_tenant(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 2, channels=1), timestamp=1)
        store.drop("a")
        assert "a" not in store
        assert store.last_timestamp("a") is None
        with pytest.raises(KeyError):
            store.buffer("a")
        store.ingest("a", rows(0, 1, channels=1), timestamp=0)  # watermark reset too

    def test_unknown_tenant_latest_raises(self):
        store = SeriesStore(capacity=4, n_channels=1)
        with pytest.raises(KeyError, match="unknown tenant"):
            store.latest("ghost", 2)

    def test_rejected_ingest_leaves_no_phantom_tenant(self):
        store = SeriesStore(capacity=4, n_channels=2)
        with pytest.raises(ValueError):
            store.ingest("bad", np.zeros((3, 5)))
        assert "bad" not in store
        assert store.tenants() == []
        assert store.stats.tenants == 0


class TestDirtyTracking:
    """Churn bookkeeping that incremental checkpoints ride on."""

    def test_ingest_marks_dirty_in_first_seen_order(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("b", rows(0, 1, channels=1))
        store.ingest("a", rows(0, 1, channels=1))
        store.ingest("b", rows(1, 1, channels=1))
        assert store.dirty_tenants() == ["b", "a"]

    def test_mark_clean_resets_until_next_mutation(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 2, channels=1))
        store.mark_clean()
        assert store.dirty_tenants() == []
        store.ingest("a", rows(2, 1, channels=1))
        assert store.dirty_tenants() == ["a"]

    def test_drop_removes_from_dirty_set(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 1, channels=1))
        store.drop("a")
        assert store.dirty_tenants() == []

    def test_adopted_tenant_is_dirty(self):
        source = SeriesStore(capacity=4, n_channels=1)
        source.ingest("a", rows(0, 2, channels=1))
        target = SeriesStore(capacity=4, n_channels=1)
        target.restore_tenant("a", source.tenant_state("a"))
        assert target.dirty_tenants() == ["a"]

    def test_restored_store_starts_clean(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 2, channels=1))
        revived = SeriesStore.from_state(store.to_state())
        assert revived.dirty_tenants() == []

    def test_stats_snapshot_is_a_detached_copy(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 2, channels=1))
        snapshot = store.stats_snapshot()
        assert snapshot == store.stats
        store.ingest("a", rows(2, 1, channels=1))
        assert snapshot.observations == 2
        assert store.stats.observations == 3

    def test_generation_bumps_on_recreation_and_travels(self):
        store = SeriesStore(capacity=4, n_channels=1)
        store.ingest("a", rows(0, 2, channels=1))
        assert store.generation("a") == 0
        store.drop("a")
        store.ingest("a", rows(0, 2, channels=1))
        assert store.generation("a") == 1
        # The incarnation number rides the tenant codec (migration) and the
        # full-store codec (snapshots) alike.
        target = SeriesStore(capacity=4, n_channels=1)
        target.restore_tenant("a", store.tenant_state("a"))
        assert target.generation("a") == 1
        revived = SeriesStore.from_state(store.to_state())
        assert revived.generation("a") == 1
