"""Property-style snapshot round-trips: ``to_state → from_state`` is identity.

Every codec the cluster's persistence and migration ride on is checked in
the states that historically break ring-style containers: partially
filled, exactly full, and wrapped-many-times buffers; Welford scalers
frozen mid-stream; and a whole forecaster whose restored incarnation must
keep forecasting bit-identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.data.incremental import RollingScaler
from repro.serving import ForecastService
from repro.streaming import RingBuffer, SeriesStore, StreamingForecaster

_settings = settings(max_examples=40, deadline=None)


def filled_buffer(capacity, n_rows, channels=2, seed=0):
    rng = np.random.default_rng(seed)
    buffer = RingBuffer(capacity, channels)
    rows = rng.normal(size=(n_rows, channels)).astype(np.float32)
    buffer.extend(rows)
    return buffer, rows


class TestRingBufferRoundTrip:
    @_settings
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        n_rows=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_roundtrip_identity_for_partial_full_and_wrapped(self, capacity, n_rows, seed):
        buffer, _ = filled_buffer(capacity, n_rows, seed=seed)
        clone = RingBuffer.from_state(buffer.to_state())
        assert len(clone) == len(buffer)
        assert clone.capacity == buffer.capacity
        assert clone.total_appended == buffer.total_appended
        for n in (0, 1, capacity // 2, capacity, capacity + 3):
            np.testing.assert_array_equal(clone.latest(n), buffer.latest(n))

    @_settings
    @given(
        capacity=st.integers(min_value=2, max_value=24),
        n_rows=st.integers(min_value=0, max_value=60),
        extra=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_restored_buffer_keeps_ingesting_identically(self, capacity, n_rows, extra, seed):
        """A snapshot must be invisible: append-after-restore == never-snapshotted."""
        buffer, _ = filled_buffer(capacity, n_rows, seed=seed)
        clone = RingBuffer.from_state(buffer.to_state())
        more = np.random.default_rng(seed + 1).normal(size=(extra, 2)).astype(np.float32)
        buffer.extend(more)
        clone.extend(more)
        np.testing.assert_array_equal(clone.latest(capacity), buffer.latest(capacity))
        assert clone.total_appended == buffer.total_appended

    def test_state_normalises_to_logical_order(self):
        buffer, rows = filled_buffer(capacity=4, n_rows=7)
        state = buffer.to_state()
        np.testing.assert_array_equal(state["data"], rows[-4:])
        assert state["total_appended"] == 7

    def test_invalid_states_rejected(self):
        buffer, _ = filled_buffer(capacity=4, n_rows=3)
        state = buffer.to_state()
        too_big = dict(state, capacity=2)
        with pytest.raises(ValueError, match="capacity"):
            RingBuffer.from_state(too_big)
        negative_total = dict(state, total_appended=1)
        with pytest.raises(ValueError, match="total_appended"):
            RingBuffer.from_state(negative_total)


class TestRollingScalerRoundTrip:
    @_settings
    @given(
        n_chunks=st.integers(min_value=0, max_value=6),
        chunk_rows=st.integers(min_value=1, max_value=20),
        channels=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_midstream_welford_moments_roundtrip_exactly(self, n_chunks, chunk_rows, channels, seed):
        rng = np.random.default_rng(seed)
        scaler = RollingScaler()
        for _ in range(n_chunks):
            scaler.update(rng.normal(size=(chunk_rows, channels)) * 10.0 + 5.0)
        clone = RollingScaler.from_state(scaler.to_state())
        assert clone.n_seen == scaler.n_seen
        if scaler.n_seen == 0:
            with pytest.raises(RuntimeError, match="no data"):
                clone.std_
            return
        np.testing.assert_array_equal(clone.mean_, scaler.mean_)
        np.testing.assert_array_equal(clone.std_, scaler.std_)

    @_settings
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_restored_scaler_continues_identically(self, seed):
        """update-after-restore must equal an uninterrupted scaler, bitwise."""
        rng = np.random.default_rng(seed)
        scaler = RollingScaler().update(rng.normal(size=(17, 3)) * 4.0)
        clone = RollingScaler.from_state(scaler.to_state())
        more = rng.normal(size=(9, 3)) * 40.0 + 100.0
        scaler.update(more)
        clone.update(more)
        np.testing.assert_array_equal(clone.mean_, scaler.mean_)
        np.testing.assert_array_equal(clone.std_, scaler.std_)
        probe = rng.normal(size=(5, 3))
        np.testing.assert_array_equal(clone.transform(probe), scaler.transform(probe))

    def test_state_is_a_defensive_copy(self):
        scaler = RollingScaler().update(np.ones((3, 2)))
        state = scaler.to_state()
        state["mean"][:] = 999.0
        assert float(scaler.mean_[0]) == 1.0


class TestSeriesStoreRoundTrip:
    def test_store_roundtrip_preserves_tenant_order_stats_and_watermarks(self, rng):
        store = SeriesStore(capacity=8, n_channels=2)
        for i, tenant in enumerate(["b", "a", "c"]):   # deliberately not sorted
            store.ingest(tenant, rng.normal(size=(3 * i + 1, 2)), timestamp=i)
        clone = SeriesStore.from_state(store.to_state())
        assert clone.tenants() == store.tenants()
        assert clone.stats == store.stats
        for tenant in store.tenants():
            np.testing.assert_array_equal(clone.latest(tenant, 8), store.latest(tenant, 8))
            assert clone.last_timestamp(tenant) == store.last_timestamp(tenant)

    def test_restore_tenant_rejects_geometry_mismatch_and_duplicates(self, rng):
        source = SeriesStore(capacity=8, n_channels=2)
        source.ingest("a", rng.normal(size=(4, 2)))
        state = source.tenant_state("a")
        narrow = SeriesStore(capacity=8, n_channels=1)
        with pytest.raises(ValueError, match="store is"):
            narrow.restore_tenant("a", state)
        target = SeriesStore(capacity=8, n_channels=2)
        target.restore_tenant("a", state)
        with pytest.raises(ValueError, match="already exists"):
            target.restore_tenant("a", state)


class TestForecasterRoundTrip:
    @pytest.fixture
    def service_factory(self):
        config = ModelConfig(
            input_length=16, horizon=4, n_channels=2, patch_length=4,
            hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
        )
        return lambda: ForecastService(LiPFormer(config), max_batch_size=8)

    @pytest.mark.parametrize("normalization", ["none", "rolling", "last_value"])
    def test_restored_forecaster_is_bit_identical_per_mode(
        self, service_factory, normalization, rng
    ):
        original = StreamingForecaster(service_factory(), normalization=normalization)
        for i in range(4):
            original.ingest(
                f"tenant-{i}", rng.normal(size=(20 + 13 * i, 2)).astype(np.float32) * (i + 1)
            )
        clone = StreamingForecaster.from_state(service_factory(), original.to_state())
        # Shared follow-up traffic, then every forecast must match bitwise
        # (windows, watermarks AND normalisation statistics travelled).
        for i in range(4):
            arrival = rng.normal(size=(2, 2)).astype(np.float32)
            original.ingest(f"tenant-{i}", arrival)
            clone.ingest(f"tenant-{i}", arrival)
        want = {t: h.result() for t, h in original.forecast_all().items()}
        got = {t: h.result() for t, h in clone.forecast_all().items()}
        assert set(got) == set(want)
        for tenant in want:
            np.testing.assert_array_equal(got[tenant], want[tenant])

    def test_export_import_moves_one_tenant_exactly(self, service_factory, rng):
        source = StreamingForecaster(service_factory(), normalization="rolling")
        values = rng.normal(size=(30, 2)).astype(np.float32) * 7.0 + 3.0
        source.ingest("mover", values)
        target = StreamingForecaster(service_factory(), normalization="rolling")
        target.import_tenant("mover", source.export_tenant("mover"))
        np.testing.assert_array_equal(
            target.store.latest("mover", 16), source.store.latest("mover", 16)
        )
        np.testing.assert_array_equal(
            target.scaler("mover").mean_, source.scaler("mover").mean_
        )
        np.testing.assert_array_equal(
            target.forecast("mover").result(), source.forecast("mover").result()
        )
