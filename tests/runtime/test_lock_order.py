"""Owner tracking and lock-order detection on the runtime locks.

Two promises under test: ``assert_held`` turns a forgotten lock into a
deterministic failure (instead of an interleaving-dependent corruption),
and the debug-mode :class:`LockOrderMonitor` reports an acquisition-order
inversion as :class:`PotentialDeadlock` even though no actual deadlock
occurs in the test run.
"""

import threading

import pytest

from repro.runtime import (
    PotentialDeadlock,
    RWLock,
    TrackedRLock,
    lock_order_monitor,
    lock_ordering,
)


class TestOwnerTracking:
    def test_unheld_lock_fails_fast(self):
        lock = RWLock(name="t1")
        with pytest.raises(RuntimeError, match="must be held"):
            lock.assert_held()
        with pytest.raises(RuntimeError, match="must be held"):
            lock.assert_held("read")
        with pytest.raises(RuntimeError, match="must be held"):
            lock.assert_held("write")
        lock.assert_not_held()  # and the inverse passes

    def test_read_side_ownership(self):
        lock = RWLock(name="t2")
        with lock.read():
            lock.assert_held()
            lock.assert_held("read")
            with pytest.raises(RuntimeError, match="must be held"):
                lock.assert_held("write")
            with pytest.raises(RuntimeError, match="already held"):
                lock.assert_not_held()
        lock.assert_not_held()

    def test_write_side_subsumes_read(self):
        lock = RWLock(name="t3")
        with lock.write():
            lock.assert_held("write")
            # A writer is strictly stronger than any reader.
            lock.assert_held("read")
            lock.assert_held("any")
        lock.assert_not_held()

    def test_ownership_is_per_thread(self):
        lock = RWLock(name="t4")
        observed = {}

        def probe():
            observed["held"] = lock.held_read() or lock.held_write()

        with lock.write():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(10)
        assert observed["held"] is False

    def test_unknown_mode_rejected(self):
        lock = RWLock(name="t5")
        with lock.read():
            with pytest.raises(ValueError, match="unknown mode"):
                lock.assert_held("exclusive")


class TestLockOrderDetection:
    def test_inverted_acquisition_raises(self):
        """A -> B recorded, then B -> A attempted: latent deadlock, caught."""
        a, b = TrackedRLock("order-a"), TrackedRLock("order-b")
        with lock_ordering():
            with a:
                with b:
                    pass
            with b:
                with pytest.raises(PotentialDeadlock, match="order-b"):
                    with a:
                        pass

    def test_inversion_across_threads(self):
        """The order graph is global: thread 1 teaches A->B, thread 2's
        B->A attempt raises even though the threads never overlap."""
        a, b = TrackedRLock("x-a"), TrackedRLock("x-b")
        outcome = {}

        def establish():
            with a:
                with b:
                    pass

        def invert():
            try:
                with b:
                    with a:
                        pass
                outcome["error"] = None
            except PotentialDeadlock as error:
                outcome["error"] = error

        with lock_ordering():
            t1 = threading.Thread(target=establish)
            t1.start()
            t1.join(10)
            t2 = threading.Thread(target=invert)
            t2.start()
            t2.join(10)
        assert isinstance(outcome["error"], PotentialDeadlock)

    def test_consistent_order_stays_silent(self):
        a, b, c = TrackedRLock("ok-a"), TrackedRLock("ok-b"), TrackedRLock("ok-c")
        with lock_ordering():
            for _ in range(3):
                with a:
                    with b:
                        with c:
                            pass

    def test_reentrant_acquisition_records_no_edge(self):
        a = TrackedRLock("re-a")
        b = TrackedRLock("re-b")
        with lock_ordering() as monitor:
            with a:
                with a:  # reentrant: no a->a edge, no false cycle
                    with b:
                        pass
            assert "re-a" not in monitor.edges().get("re-a", set())

    def test_rwlock_participates(self):
        topo = RWLock(name="rw-topo")
        shard = TrackedRLock("rw-shard")
        with lock_ordering():
            with topo.read():
                with shard:
                    pass
            with shard:
                with pytest.raises(PotentialDeadlock):
                    with topo.read():
                        pass

    def test_disabled_monitor_costs_nothing_and_catches_nothing(self):
        a, b = TrackedRLock("off-a"), TrackedRLock("off-b")
        assert not lock_order_monitor().enabled
        with a:
            with b:
                pass
        with b:
            with a:  # inverted, but detection is off
                pass

    def test_failed_nonblocking_acquire_rolls_back_stack(self):
        lock = TrackedRLock("nb")
        holder_ready = threading.Event()
        release = threading.Event()

        def hold():
            with lock._inner:
                holder_ready.set()
                release.wait(10)

        thread = threading.Thread(target=hold)
        thread.start()
        holder_ready.wait(10)
        try:
            with lock_ordering() as monitor:
                assert lock.acquire(blocking=False) is False
                # The failed attempt must not leave "nb" on this thread's
                # stack, or every later acquisition records bogus edges.
                assert monitor.held_by_current_thread() == []
        finally:
            release.set()
            thread.join(10)


class TestClusterLockNames:
    def test_cluster_topology_lock_is_named(self, small_config):
        from repro.cluster import ShardedForecaster
        from repro.core import LiPFormer
        from repro.serving import ForecastService

        cluster = ShardedForecaster(
            lambda: ForecastService(LiPFormer(small_config)), n_shards=2
        )
        assert cluster._topology.name == "cluster-topology"
        assert sorted(lock.name for lock in cluster._shard_locks.values()) == [
            "shard:shard-0",
            "shard:shard-1",
        ]
