"""Tests for the reader/writer topology lock."""

import threading
import time

import pytest

from repro.runtime import RWLock


def run_threads(*targets, timeout=10.0):
    threads = [threading.Thread(target=t) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "thread deadlocked"


class TestReaders:
    def test_readers_overlap(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()   # only passes if both readers are inside at once

        run_threads(reader, reader)

    def test_read_is_reentrant(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                pass
        # fully released: a writer can now proceed
        with lock.write():
            pass

    def test_reentrant_read_passes_a_waiting_writer(self):
        """A reader re-entering while a writer waits must not deadlock."""
        lock = RWLock()
        entered = threading.Event()
        release = threading.Event()
        result = []

        def reader():
            with lock.read():
                entered.set()
                release.wait(5)
                with lock.read():       # would deadlock if queued behind writer
                    result.append("nested")

        def writer():
            entered.wait(5)
            release.set()
            with lock.write():
                result.append("writer")

        run_threads(reader, writer)
        assert result == ["nested", "writer"]


class TestWriters:
    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.write():
                order.append("w-in")
                time.sleep(0.05)
                order.append("w-out")

        def reader():
            time.sleep(0.01)        # let the writer in first
            with lock.read():
                order.append("r")

        run_threads(writer, reader)
        assert order == ["w-in", "w-out", "r"]

    def test_write_is_reentrant(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                with lock.read():   # reads nested in a write are allowed
                    pass
        with lock.read():
            pass

    def test_upgrade_raises_instead_of_deadlocking(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                with lock.write():
                    pass  # pragma: no cover

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a steady read stream cannot starve a writer."""
        lock = RWLock()
        first_reader_in = threading.Event()
        writer_waiting = threading.Event()
        order = []

        def long_reader():
            with lock.read():
                first_reader_in.set()
                writer_waiting.wait(5)
                time.sleep(0.05)    # give the late reader time to (not) enter

        def writer():
            first_reader_in.wait(5)
            writer_waiting.set()    # set just before blocking on the held read
            with lock.write():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(5)
            time.sleep(0.01)        # arrive while the writer is queued
            with lock.read():
                order.append("late-reader")

        run_threads(long_reader, writer, late_reader)
        assert order == ["writer", "late-reader"]

    def test_concurrent_writers_serialise(self):
        lock = RWLock()
        counter = {"value": 0, "max_inside": 0}

        def writer():
            for _ in range(50):
                with lock.write():
                    counter["value"] += 1
                    counter["max_inside"] = max(counter["max_inside"], 1)

        run_threads(writer, writer, writer)
        assert counter["value"] == 150
