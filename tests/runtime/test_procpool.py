"""Tests for :class:`repro.runtime.ProcessExecutor` (GIL-free pool).

Tasks live in :mod:`procpool_tasks` (module-level functions — the only
kind that can cross the process boundary) and workers re-import them via
the ``sys_path`` the executor forwards at init.
"""

import math
import os

import numpy as np
import pytest

import procpool_tasks
from repro.runtime import Executor, ProcessExecutor, task_name

TASKS_DIR = os.path.dirname(os.path.abspath(procpool_tasks.__file__))


@pytest.fixture
def pool():
    executor = ProcessExecutor(max_workers=2, sys_path=[TASKS_DIR], request_timeout=60.0)
    yield executor
    executor.close()


class TestTaskName:
    def test_module_level_function(self):
        assert task_name(procpool_tasks.square) == "procpool_tasks:square"

    def test_dotted_qualname(self):
        assert task_name(procpool_tasks.Tasks.triple) == "procpool_tasks:Tasks.triple"

    def test_module_bound_builtin_allowed(self):
        # math.sqrt carries __self__ = <module math>; still importable.
        assert task_name(math.sqrt) == "math:sqrt"

    def test_lambda_rejected(self):
        with pytest.raises(TypeError, match="lambdas"):
            task_name(lambda x: x)

    def test_closure_rejected(self):
        def local(x):
            return x

        with pytest.raises(TypeError, match="process"):
            task_name(local)

    def test_bound_method_rejected(self):
        with pytest.raises(TypeError, match="bound"):
            task_name(np.random.default_rng(0).normal)

    def test_builtin_method_of_instance_rejected(self):
        # C-level bound methods carry no usable module/qualname address.
        with pytest.raises(TypeError):
            task_name("abc".upper)


class TestMap:
    def test_results_in_input_order(self, pool):
        assert pool.map(procpool_tasks.square, range(10)) == [i * i for i in range(10)]

    def test_is_an_executor(self, pool):
        assert isinstance(pool, Executor)

    def test_numpy_arguments_and_results(self, pool):
        windows = [np.arange(6, dtype=np.float64).reshape(3, 2) + i for i in range(5)]
        results = pool.map(procpool_tasks.scale_window, windows)
        for window, result in zip(windows, results):
            np.testing.assert_array_equal(result, window * 2.0)

    def test_empty_input(self, pool):
        assert pool.map(procpool_tasks.square, []) == []

    def test_work_actually_leaves_this_process(self, pool):
        pids = set(pool.map(procpool_tasks.worker_pid, range(6)))
        assert os.getpid() not in pids
        assert 1 <= len(pids) <= 2  # the pool's two workers, reused across waves

    def test_workers_are_reused_across_maps(self, pool):
        first = set(pool.map(procpool_tasks.worker_pid, range(4)))
        second = set(pool.map(procpool_tasks.worker_pid, range(4)))
        assert first == second

    def test_task_error_rematerialises(self, pool):
        with pytest.raises(ValueError, match="refused item"):
            pool.map(procpool_tasks.explode, [1])

    def test_settles_wave_then_raises(self, pool):
        # One poisoned item must not prevent the rest of the fan-out from
        # completing; the first error surfaces after the waves settle.
        items = list(range(6))

        with pytest.raises(ValueError):
            pool.map(procpool_tasks.explode, items)
        # The pool is still serviceable afterwards.
        assert pool.map(procpool_tasks.square, [7]) == [49]

    def test_worker_death_mid_task_is_survivable(self, pool):
        with pytest.raises((ConnectionError, OSError)):
            pool.map(procpool_tasks.die, [0])
        # A fresh worker replaces the corpse on the next wave.
        assert pool.map(procpool_tasks.square, [8]) == [64]

    def test_context_manager_closes_workers(self):
        with ProcessExecutor(max_workers=1, sys_path=[TASKS_DIR]) as pool:
            (pid,) = pool.map(procpool_tasks.worker_pid, [0])
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)  # reaped: signalling its pid must fail

    def test_close_is_idempotent(self, pool):
        pool.map(procpool_tasks.square, [2])
        pool.close()
        pool.close()


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessExecutor(max_workers=0)

    def test_unimportable_task_fails_cleanly(self):
        # Without sys_path the worker cannot import procpool_tasks.
        with ProcessExecutor(max_workers=1, request_timeout=60.0) as pool:
            with pytest.raises(Exception, match="procpool_tasks"):
                pool.map(procpool_tasks.square, [1])

    def test_lazy_attribute_export(self):
        # ProcessExecutor is a PEP 562 lazy export (workers run
        # ``python -m repro.runtime.procpool``; an eager import would
        # double-import the module there).
        import repro.runtime as runtime

        assert "ProcessExecutor" in runtime.__all__
        assert runtime.ProcessExecutor is ProcessExecutor
        with pytest.raises(AttributeError):
            runtime.does_not_exist
