"""Tests for the pluggable shard fan-out executors."""

import threading
import time

import pytest

from repro.runtime import Executor, PoolExecutor, SerialExecutor, map_shards


@pytest.fixture(params=["serial", "pool"])
def executor(request):
    instance = SerialExecutor() if request.param == "serial" else PoolExecutor(4)
    yield instance
    instance.close()


class TestContract:
    """Behaviour every executor implementation must share."""

    def test_results_align_with_input_order(self, executor):
        assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self, executor):
        assert executor.map(lambda x: x, []) == []

    def test_single_item(self, executor):
        assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_first_error_in_input_order_propagates(self, executor):
        def boom(x):
            if x % 2:
                raise ValueError(f"bad {x}")
            return x

        with pytest.raises(ValueError, match="bad 1"):
            executor.map(boom, [0, 1, 2, 3])

    def test_all_tasks_complete_before_error_is_raised(self, executor):
        """No task is abandoned mid-flight: failures surface after the batch
        settles, so shard work never stops halfway with locks held."""
        finished = []

        def task(x):
            if x == 0:
                raise RuntimeError("first fails")
            finished.append(x)
            return x

        with pytest.raises(RuntimeError, match="first fails"):
            executor.map(task, [0, 1, 2, 3])
        assert sorted(finished) == [1, 2, 3]

    def test_context_manager_closes(self, executor):
        with executor as inside:
            assert inside.map(lambda x: x, [1]) == [1]

    def test_base_class_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().map(lambda x: x, [1])


class TestSerialInterrupts:
    def test_keyboard_interrupt_propagates_immediately(self):
        """Ctrl-C mid-fan-out must not grind through the remaining shards
        first — inline execution has nothing in flight to wait for."""
        ran = []

        def task(x):
            if x == 1:
                raise KeyboardInterrupt
            ran.append(x)
            return x

        with pytest.raises(KeyboardInterrupt):
            SerialExecutor().map(task, [0, 1, 2, 3])
        assert ran == [0]


class TestPoolExecutor:
    def test_tasks_overlap_across_threads(self):
        """Two tasks that each wait for the other can only finish if they
        genuinely run concurrently."""
        barrier = threading.Barrier(2, timeout=5)

        def task(_):
            barrier.wait()
            return threading.get_ident()

        with PoolExecutor(2) as pool:
            idents = pool.map(task, [0, 1])
        assert len(set(idents)) == 2

    def test_pool_is_reused_across_calls(self):
        """The underlying thread pool is built once, not per map() call."""
        with PoolExecutor(2) as pool:
            pool.map(lambda x: x, [0, 1])
            inner = pool._pool
            assert inner is not None
            pool.map(lambda x: x, [0, 1])
            assert pool._pool is inner

    def test_single_task_runs_inline(self):
        with PoolExecutor(2) as pool:
            assert pool.map(lambda _: threading.get_ident(), [0]) == [threading.get_ident()]

    def test_close_is_idempotent_and_reopens_on_use(self):
        pool = PoolExecutor(2)
        assert pool.map(lambda x: x, [1, 2]) == [1, 2]
        pool.close()
        pool.close()
        # A closed pool lazily rebuilds on next use rather than erroring.
        assert pool.map(lambda x: x, [3, 4]) == [3, 4]
        pool.close()

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError, match="max_workers"):
            PoolExecutor(0)

    def test_default_width_is_cpu_count(self):
        assert PoolExecutor().max_workers >= 1


class TestMapShards:
    def test_results_keyed_and_ordered_by_shard_id(self):
        out = map_shards(SerialExecutor(), lambda s: s.upper(), ["b", "a", "c"])
        assert out == {"b": "B", "a": "A", "c": "C"}
        assert list(out) == ["b", "a", "c"]

    def test_parallel_map_shards_preserves_order(self):
        def slow_for_first(shard_id):
            if shard_id == "s0":
                time.sleep(0.02)
            return shard_id

        with PoolExecutor(3) as pool:
            out = map_shards(pool, slow_for_first, ["s0", "s1", "s2"])
        assert list(out) == ["s0", "s1", "s2"]
