"""Tests for the retry/backoff and circuit-breaker primitives."""

import pytest

import repro.obs as obs
from repro.errors import CircuitOpen, DeadlineExceeded, TransientWireError
from repro.runtime import CircuitBreaker, RetryPolicy


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", reset_timeout=0.0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker("x", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()  # still closed
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 2

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("x", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_trips_open_and_fails_fast(self):
        breaker = CircuitBreaker("x", failure_threshold=2, reset_timeout=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.name == "x"
        assert 0.0 < excinfo.value.retry_after <= 60.0

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker("x", failure_threshold=1, reset_timeout=0.01)
        breaker.record_failure()
        deadline = obs.now() + 2.0
        while obs.now() < deadline:
            try:
                breaker.allow()  # becomes the probe once the reset elapses
                break
            except CircuitOpen:
                continue
        assert breaker.state == CircuitBreaker.HALF_OPEN
        with pytest.raises(CircuitOpen):
            breaker.allow()  # second caller rejected while probe in flight

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("x", failure_threshold=1, reset_timeout=0.01)
        breaker.record_failure()
        deadline = obs.now() + 2.0
        while obs.now() < deadline:
            try:
                breaker.allow()
                break
            except CircuitOpen:
                continue
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()

    def test_probe_failure_reopens_and_counts_a_trip(self):
        breaker = CircuitBreaker("x", failure_threshold=1, reset_timeout=0.01)
        breaker.record_failure()
        deadline = obs.now() + 2.0
        while obs.now() < deadline:
            try:
                breaker.allow()
                break
            except CircuitOpen:
                continue
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=1.0, cap=0.5)

    def test_backoff_is_seeded_and_bounded(self):
        a = RetryPolicy(base=0.05, cap=0.4, seed=7)
        b = RetryPolicy(base=0.05, cap=0.4, seed=7)
        prev_a = prev_b = None
        for _ in range(6):
            prev_a = a.next_delay(prev_a)
            prev_b = b.next_delay(prev_b)
            assert prev_a == prev_b  # same seed, same sleep sequence
            assert 0.05 <= prev_a <= 0.4

    def test_first_delay_is_base(self):
        assert RetryPolicy(base=0.2).next_delay(None) == 0.2

    def test_masks_transient_errors(self):
        policy = RetryPolicy(max_attempts=3, base=0.001, cap=0.002)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientWireError("hiccup")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert len(attempts) == 3

    def test_exhausted_attempts_reraise_the_last_error(self):
        policy = RetryPolicy(max_attempts=2, base=0.001, cap=0.002)
        with pytest.raises(TransientWireError):
            policy.run(lambda: (_ for _ in ()).throw(TransientWireError("x")))

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, base=0.001, cap=0.002)
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.run(boom)
        assert len(calls) == 1

    def test_deadline_caps_the_retry_budget(self):
        policy = RetryPolicy(max_attempts=50, base=0.05, cap=0.05)

        def always_transient():
            raise TransientWireError("hiccup")

        with pytest.raises(DeadlineExceeded) as excinfo:
            policy.run(always_transient, deadline=obs.now() + 0.06)
        # The deadline error chains the transport error that spent it.
        assert isinstance(excinfo.value.__cause__, TransientWireError)

    def test_on_retry_hook_sees_attempt_delay_and_error(self):
        policy = RetryPolicy(max_attempts=3, base=0.001, cap=0.002)
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientWireError("x")
            return "ok"

        policy.run(flaky, on_retry=lambda a, d, e: seen.append((a, d, type(e))))
        assert [s[0] for s in seen] == [1, 2]
        assert all(d > 0 for _, d, _ in seen)
        assert all(t is TransientWireError for _, _, t in seen)
