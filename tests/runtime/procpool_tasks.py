"""Module-level task functions the ProcessExecutor tests ship to workers.

Workers re-import tasks by ``module:qualname``; this module is resolvable
in a worker only because the tests pass the tests directory through the
executor's ``sys_path`` — which is itself part of what the tests verify.
"""

import os

import numpy as np


def square(x):
    return x * x


def scale_window(values):
    values = np.asarray(values, dtype=np.float64)
    return values * 2.0


def worker_pid(_):
    return os.getpid()


def explode(x):
    raise ValueError(f"task refused item {x}")


def die(x):
    os._exit(13)


class Tasks:
    """Namespace for a dotted-qualname task (``Tasks.triple``)."""

    @staticmethod
    def triple(x):
        return 3 * x
