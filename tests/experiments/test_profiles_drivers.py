"""Tests for experiment profiles and (smoke-scale) table/figure drivers."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER,
    QUICK,
    SMOKE,
    get_profile,
    run_efficiency_report,
    run_figure6,
    run_figure7,
    run_table3,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
    run_table11,
    run_table12,
    summarize_winners,
)


class TestProfiles:
    def test_get_profile(self):
        assert get_profile("paper") is PAPER
        assert get_profile("QUICK") is QUICK
        with pytest.raises(KeyError):
            get_profile("unknown")

    def test_paper_profile_matches_section_iv(self):
        assert PAPER.input_length == 720
        assert PAPER.patch_length == 48
        assert PAPER.hidden_dim == 512
        assert PAPER.horizons == (96, 192, 336, 720)
        assert PAPER.batch_size == 256

    def test_model_config_adjusts_patch_length(self):
        config = SMOKE.model_config(n_channels=3, horizon=12, input_length=50)
        assert 50 % config.patch_length == 0

    def test_training_config_fields(self):
        training = QUICK.training_config()
        assert training.epochs == QUICK.epochs
        assert training.batch_size == QUICK.batch_size


class TestDriversSmoke:
    """Each driver runs end to end at the SMOKE scale and yields sensible rows."""

    def test_table3(self):
        table = run_table3(
            SMOKE, datasets=("ETTh1",), horizons=(12,), models=("LiPFormer", "DLinear"), with_efficiency=True
        )
        assert len(table) == 2
        columns = table.columns()
        for expected in ("model", "dataset", "horizon", "mse", "mae", "parameters", "macs"):
            assert expected in columns
        winners = summarize_winners(table)
        assert sum(row["first_places"] for row in winners.rows) == 1

    def test_table5_univariate(self):
        table = run_table5(SMOKE, datasets=("ETTh1",), horizons=(12,), models=("LiPFormer", "DLinear"))
        assert len(table) == 2
        assert all(np.isfinite(row["mse"]) for row in table.rows)

    def test_table6_pretraining(self):
        table = run_table6(SMOKE, datasets=("ETTh1",))
        assert len(table) == 1
        row = table.rows[0]
        assert "mse_with_pretrain" in row and "mse_without_pretrain" in row

    def test_table7_edge(self):
        table = run_table7(
            SMOKE, datasets=("ETTh1",), input_lengths=(24, 48), models=("Transformer", "LiPFormer")
        )
        assert len(table) == 2
        assert "T=24" in table.columns() and "T=48" in table.columns()

    def test_table8_patch_size(self):
        table = run_table8(SMOKE, datasets=("ETTh1",), patch_lengths=(6, 12))
        assert len(table) == 2
        assert {row["patch_length"] for row in table.rows} == {6, 12}

    def test_table8_rejects_incompatible_patch_lengths(self):
        with pytest.raises(ValueError):
            run_table8(SMOKE, datasets=("ETTh1",), patch_lengths=(7,))

    def test_table9_input_length(self):
        table = run_table9(
            SMOKE, datasets=("ETTh1",), input_lengths=(24, 48), models=("LiPFormer", "DLinear")
        )
        assert len(table) == 2
        assert "LiPFormer" in table.columns() and "DLinear" in table.columns()

    def test_table10_ablation(self):
        table = run_table10(SMOKE, datasets=("ETTh1",))
        variants = {row["variant"] for row in table.rows}
        assert "LiPFormer" in variants and "LiPFormer+FFNs+LN" in variants
        assert len(table) == 4

    def test_table11_ablation(self):
        table = run_table11(SMOKE, datasets=("ETTh1",))
        variants = {row["variant"] for row in table.rows}
        assert "Neither" in variants and "LiPFormer" in variants
        assert len(table) == 4

    def test_table12_transplant(self):
        table = run_table12(SMOKE, models=("Informer",))
        assert len(table) == 1
        row = table.rows[0]
        assert "mse_with_encoder" in row and "mse_without_encoder" in row

    def test_figure6(self):
        table = run_figure6(SMOKE, horizons=(12,))
        assert len(table) == 1
        assert "mse_with_encoder" in table.columns()

    def test_figure7(self):
        table, matrices = run_figure7(SMOKE, datasets=("ETTm1",), batch_size=24)
        assert len(table) == 2  # train + validation
        key = "ETTm1/train"
        assert key in matrices
        logits = matrices[key].logits
        assert logits.shape[0] == logits.shape[1] <= 24
        # After pre-training, matched pairs should be more similar on average.
        assert matrices[key].diagonal_margin > 0

    def test_efficiency_report(self):
        table = run_efficiency_report(SMOKE, models=("LiPFormer", "DLinear", "Transformer"))
        assert len(table) == 3
        by_model = {row["model"]: row for row in table.rows}
        assert by_model["LiPFormer"]["macs"] < by_model["Transformer"]["macs"]
        assert all(row["parameters"] > 0 for row in table.rows)
