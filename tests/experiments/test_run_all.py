"""Tests for the run-all experiment orchestrator and its CLI."""

import os

import pytest

from repro.experiments import EXPERIMENT_RUNNERS, SMOKE, run_all
from repro.experiments.run_all import main


class TestRunnerRegistry:
    def test_every_paper_artifact_has_a_runner(self):
        expected = {
            "table3",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "table10",
            "table11",
            "table12",
            "figure6",
            "figure7",
            "efficiency",
        }
        assert set(EXPERIMENT_RUNNERS) == expected

    def test_runner_entries_have_descriptions(self):
        for name, (description, runner) in EXPERIMENT_RUNNERS.items():
            assert description
            assert callable(runner)


class TestRunAll:
    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_all(SMOKE, str(tmp_path), only=["table99"])

    def test_selected_subset_writes_artifacts(self, tmp_path):
        output = os.path.join(tmp_path, "results")
        tables = run_all(SMOKE, output, only=["table7", "efficiency"])
        assert set(tables) == {"table7", "efficiency"}
        for name in ("table7", "efficiency"):
            assert os.path.exists(os.path.join(output, f"{name}.csv"))
            assert os.path.exists(os.path.join(output, f"{name}.json"))
        report = open(os.path.join(output, "report.md")).read()
        assert "Table VII" in report
        assert "efficiency" in report or "MACs" in report

    def test_cli_main_runs_subset(self, tmp_path, capsys):
        output = os.path.join(tmp_path, "cli-results")
        main(["--profile", "smoke", "--output", output, "--only", "efficiency"])
        captured = capsys.readouterr()
        assert "efficiency" in captured.out
        assert os.path.exists(os.path.join(output, "report.md"))
