"""Shape, behaviour and trainability tests for every baseline forecaster."""

import numpy as np
import pytest

from repro.baselines import (
    Autoformer,
    Crossformer,
    DLinear,
    FGNN,
    Informer,
    ITransformer,
    LightTS,
    NLinear,
    PatchTST,
    Reformer,
    TiDE,
    TimeMixer,
    VanillaTransformer,
    available_models,
    create_model,
)
from repro.nn import AdamW, MSELoss, Tensor

ALL_BASELINE_CLASSES = [
    DLinear,
    NLinear,
    PatchTST,
    TiDE,
    ITransformer,
    TimeMixer,
    FGNN,
    VanillaTransformer,
    Informer,
    Autoformer,
    Crossformer,
    LightTS,
    Reformer,
]


@pytest.fixture
def x_batch(small_config, rng):
    return Tensor(rng.standard_normal((4, small_config.input_length, small_config.n_channels)))


@pytest.fixture
def covariates(small_config, rng):
    numerical = rng.standard_normal(
        (4, small_config.horizon, small_config.covariate_numerical_dim)
    ).astype(np.float32)
    categorical = np.stack(
        [
            rng.integers(0, cardinality, size=(4, small_config.horizon))
            for cardinality in small_config.covariate_categorical_cardinalities
        ],
        axis=-1,
    )
    return numerical, categorical


class TestForecastShapes:
    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_output_shape(self, model_class, small_config, x_batch, rng):
        model = model_class(small_config, rng=rng)
        out = model(x_batch)
        assert out.shape == (4, small_config.horizon, small_config.n_channels)

    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_input_validation(self, model_class, small_config, rng):
        model = model_class(small_config, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((2, small_config.input_length + 1, small_config.n_channels))))

    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_gradients_reach_all_parameters(self, model_class, small_config, x_batch, rng):
        model = model_class(small_config, rng=rng)
        model(x_batch).sum().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"{model_class.__name__}: no gradient for {missing}"


class TestCovariateSupport:
    def test_tide_uses_covariates(self, small_config, x_batch, covariates, rng):
        model = TiDE(small_config, rng=rng)
        model.eval()
        numerical, categorical = covariates
        with_covariates = model(x_batch, numerical, categorical).data
        without = model(x_batch).data
        assert model.supports_covariates
        assert not np.allclose(with_covariates, without)

    def test_tide_without_covariate_config(self, no_covariate_config, rng):
        model = TiDE(no_covariate_config, rng=rng)
        x = Tensor(rng.standard_normal((2, no_covariate_config.input_length, no_covariate_config.n_channels)))
        assert model(x).shape == (2, no_covariate_config.horizon, no_covariate_config.n_channels)

    @pytest.mark.parametrize("model_class", [DLinear, PatchTST, ITransformer, TimeMixer, FGNN])
    def test_covariate_agnostic_models_ignore_covariates(
        self, model_class, small_config, x_batch, covariates, rng
    ):
        model = model_class(small_config, rng=rng)
        model.eval()
        numerical, categorical = covariates
        assert not model.supports_covariates
        np.testing.assert_allclose(
            model(x_batch, numerical, categorical).data, model(x_batch).data, rtol=1e-6
        )


class TestArchitectureProperties:
    def test_dlinear_is_smallest(self, small_config, rng):
        dlinear = DLinear(small_config, rng=rng).num_parameters()
        patchtst = PatchTST(small_config, rng=rng).num_parameters()
        transformer = VanillaTransformer(small_config, rng=rng).num_parameters()
        assert dlinear < patchtst
        assert dlinear < transformer

    def test_nlinear_level_shift_equivariance(self, small_config, rng):
        model = NLinear(small_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, small_config.input_length, small_config.n_channels)).astype(np.float32)
        base = model(Tensor(x)).data
        shifted = model(Tensor(x + 10)).data
        np.testing.assert_allclose(shifted, base + 10, rtol=1e-4, atol=1e-3)

    def test_dlinear_decomposition_sums_to_linear_response(self, small_config, rng):
        """Trend + seasonal forecasts must both contribute (non-degenerate)."""
        model = DLinear(small_config, rng=rng)
        assert model.trend_linear.weight.shape == (small_config.horizon, small_config.input_length)
        assert model.seasonal_linear.weight.shape == (small_config.horizon, small_config.input_length)

    def test_patchtst_channel_permutation_equivariance(self, small_config, rng):
        model = PatchTST(small_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, small_config.input_length, small_config.n_channels)).astype(np.float32)
        permutation = [2, 0, 1]
        out = model(Tensor(x)).data
        permuted = model(Tensor(x[:, :, permutation])).data
        np.testing.assert_allclose(permuted, out[:, :, permutation], rtol=1e-4, atol=1e-5)

    def test_informer_distillation_halves_tokens(self, small_config, rng):
        tokens = Tensor(rng.standard_normal((2, 10, 8)))
        assert Informer._distill(tokens).shape == (2, 5, 8)
        odd = Tensor(rng.standard_normal((2, 7, 8)))
        assert Informer._distill(odd).shape == (2, 3, 8)

    def test_itransformer_uses_variate_tokens(self, small_config, rng):
        model = ITransformer(small_config, rng=rng)
        # the variate embedding maps the whole input window to the hidden size
        assert model.variate_embedding.weight.shape == (
            small_config.hidden_dim,
            small_config.input_length,
        )


class TestRegistry:
    def test_all_models_listed(self):
        names = available_models()
        assert "LiPFormer" in names
        assert len(names) == 14

    def test_create_model_case_insensitive(self, small_config):
        model = create_model("dlinear", small_config)
        assert isinstance(model, DLinear)

    def test_create_unknown_model_raises(self, small_config):
        with pytest.raises(KeyError):
            create_model("NotAModel", small_config)

    @pytest.mark.parametrize("name", ["LiPFormer", "PatchTST", "DLinear", "TiDE", "iTransformer"])
    def test_factory_roundtrip(self, name, small_config, x_batch):
        model = create_model(name, small_config)
        assert model(x_batch).shape == (4, small_config.horizon, small_config.n_channels)


class TestTrainability:
    @pytest.mark.parametrize("model_class", [DLinear, PatchTST, TiDE, ITransformer, TimeMixer, FGNN])
    def test_short_training_reduces_loss(self, model_class, small_config, rng):
        """A few optimisation steps on a sinusoid continuation should reduce the loss."""
        model = model_class(small_config, rng=rng)
        length = small_config.input_length + small_config.horizon
        t = np.arange(length)
        windows = np.stack(
            [np.sin(2 * np.pi * (t + shift) / 24.0) for shift in rng.integers(0, 100, size=32)]
        ).astype(np.float32)[:, :, None]
        windows = np.repeat(windows, small_config.n_channels, axis=2)
        x, y = windows[:, : small_config.input_length], windows[:, small_config.input_length :]
        optimizer = AdamW(model.parameters(), lr=5e-3)
        loss_fn = MSELoss()
        losses = []
        for _ in range(20):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
