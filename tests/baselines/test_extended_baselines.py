"""Behaviour tests specific to the extended baselines (Crossformer, LightTS, Reformer)."""

import numpy as np
import pytest

from repro.baselines import Crossformer, LightTS, Reformer, VanillaTransformer
from repro.config import ModelConfig
from repro.nn import Tensor
from repro.profiling import measure_macs


class TestCrossformer:
    def test_cross_channel_dependence(self, small_config, rng):
        """Crossformer attends across channels: perturbing one channel's input
        must change the forecasts of the *other* channels (channel-independent
        models like PatchTST would leave them untouched)."""
        model = Crossformer(small_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, small_config.input_length, small_config.n_channels)).astype(np.float32)
        perturbed = x.copy()
        # A non-constant perturbation (a constant offset would be removed by
        # the last-value instance normalisation).
        perturbed[:, :, 2] += rng.standard_normal(small_config.input_length).astype(np.float32)
        out = model(Tensor(x)).data
        out_perturbed = model(Tensor(perturbed)).data
        assert not np.allclose(out_perturbed[:, :, 0], out[:, :, 0], atol=1e-5)

    def test_output_shape(self, small_config, rng):
        model = Crossformer(small_config, rng=rng)
        x = Tensor(rng.standard_normal((3, small_config.input_length, small_config.n_channels)))
        assert model(x).shape == (3, small_config.horizon, small_config.n_channels)


class TestLightTS:
    def test_chunk_size_validation(self, small_config, rng):
        with pytest.raises(ValueError):
            LightTS(small_config, chunk_size=7, rng=rng)

    def test_is_lightweight(self, small_config, rng):
        light = LightTS(small_config, rng=rng)
        transformer = VanillaTransformer(small_config, rng=rng)
        assert light.num_parameters() < transformer.num_parameters() / 3

    def test_level_shift_equivariance(self, small_config, rng):
        model = LightTS(small_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, small_config.input_length, small_config.n_channels)).astype(np.float32)
        base = model(Tensor(x)).data
        shifted = model(Tensor(x + 5.0)).data
        np.testing.assert_allclose(shifted, base + 5.0, rtol=1e-3, atol=1e-3)


class TestReformer:
    def test_chunk_size_validation(self, small_config):
        with pytest.raises(ValueError):
            Reformer(small_config, chunk_size=1)

    def test_chunked_attention_is_cheaper_than_full(self, rng):
        config = ModelConfig(
            input_length=192, horizon=24, n_channels=3, patch_length=24, hidden_dim=32, dropout=0.0,
            n_heads=2, n_layers=2,
        )
        reformer = Reformer(config, chunk_size=24, rng=rng)
        transformer = VanillaTransformer(config, rng=rng)
        assert measure_macs(reformer, batch_size=4) < measure_macs(transformer, batch_size=4)

    def test_handles_length_not_divisible_by_chunk(self, rng):
        config = ModelConfig(
            input_length=60, horizon=12, n_channels=2, patch_length=12, hidden_dim=16, dropout=0.0,
            n_heads=2, n_layers=1,
        )
        model = Reformer(config, chunk_size=16, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 60, 2))))
        assert out.shape == (2, 12, 2)
