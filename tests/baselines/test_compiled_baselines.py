"""Compiled-plan parity for the shape-determined baselines.

DLinear, NLinear, PatchTST and LightTS opted into ``supports_compiled_plan``:
their forwards are shape-determined, so one polymorphic plan traced at a
bucket batch must replay bit-identically to eager inference at every batch
size it serves.
"""

import numpy as np
import pytest

from repro.baselines import DLinear, LightTS, NLinear, PatchTST
from repro.nn.plan import CompiledPredictor, InferencePlan

COMPILED_BASELINES = [DLinear, NLinear, PatchTST, LightTS]


@pytest.fixture
def config(no_covariate_config):
    return no_covariate_config


@pytest.mark.parametrize("model_cls", COMPILED_BASELINES)
class TestCompiledBaselineParity:
    def test_opted_into_compiled_plans(self, model_cls, config):
        assert model_cls.supports_compiled_plan

    def test_plan_bit_identical_to_eager_across_batches(self, model_cls, config, rng):
        model = model_cls(config).eval()
        x = rng.normal(size=(8, config.input_length, config.n_channels)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        assert plan.sliceable, f"{model_cls.__name__} demoted: {plan.demotions}"
        for batch in (1, 3, 5, 8):
            fresh = rng.normal(
                size=(batch, config.input_length, config.n_channels)
            ).astype(np.float32)
            assert np.array_equal(plan.run(fresh), model.predict(fresh))

    def test_liveness_arena_smaller_than_naive(self, model_cls, config, rng):
        model = model_cls(config).eval()
        x = rng.normal(size=(8, config.input_length, config.n_channels)).astype(np.float32)
        plan = InferencePlan.trace(model, x)
        assert 0 < plan.arena_nbytes < plan.naive_nbytes

    def test_predict_compiled_routes_through_one_bucket_plan(self, model_cls, config, rng):
        model = model_cls(config).eval()
        predictor = CompiledPredictor(model, max_batch=8)
        warm = rng.normal(size=(8, config.input_length, config.n_channels)).astype(np.float32)
        assert np.array_equal(predictor.predict(warm), model.predict(warm))
        for batch in (1, 2, 5, 7):
            fresh = rng.normal(
                size=(batch, config.input_length, config.n_channels)
            ).astype(np.float32)
            assert np.array_equal(predictor.predict(fresh), model.predict(fresh))
        assert predictor.traces == 1 and len(predictor) == 1
