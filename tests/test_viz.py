"""Tests for the dependency-free visualisation helpers."""

import os

import numpy as np
import pytest

from repro.viz import ascii_heatmap, forecast_plot, loss_curve, normalise_matrix, save_pgm, sparkline


class TestNormaliseMatrix:
    def test_range(self, rng):
        out = normalise_matrix(rng.standard_normal((5, 5)) * 10)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_matrix(self):
        out = normalise_matrix(np.full((3, 3), 7.0))
        np.testing.assert_allclose(out, 0.5)


class TestAsciiHeatmap:
    def test_shape_of_output(self, rng):
        text = ascii_heatmap(rng.standard_normal((6, 8)))
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 8 for line in lines)

    def test_title_prepended(self, rng):
        text = ascii_heatmap(rng.standard_normal((3, 3)), title="logits")
        assert text.splitlines()[0] == "logits"

    def test_diagonal_structure_visible(self):
        matrix = np.eye(10) * 10.0
        text = ascii_heatmap(matrix)
        lines = text.splitlines()
        # Diagonal cells use the densest character, off-diagonal the lightest.
        assert lines[0][0] == "@" and lines[5][5] == "@"
        assert lines[0][5] == " "

    def test_downsampling_large_matrix(self, rng):
        text = ascii_heatmap(rng.standard_normal((200, 200)), max_size=20)
        lines = text.splitlines()
        assert len(lines) <= 20
        assert all(len(line) <= 20 for line in lines)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            ascii_heatmap(rng.standard_normal(5))

    def test_rejects_tiny_max_size(self, rng):
        with pytest.raises(ValueError):
            ascii_heatmap(rng.standard_normal((3, 3)), max_size=1)


class TestPgm:
    def test_writes_valid_header_and_size(self, rng, tmp_path):
        path = os.path.join(tmp_path, "out", "matrix.pgm")
        matrix = rng.standard_normal((12, 17))
        save_pgm(matrix, path)
        with open(path, "rb") as handle:
            content = handle.read()
        assert content.startswith(b"P5\n17 12\n255\n")
        assert len(content) == len(b"P5\n17 12\n255\n") + 12 * 17

    def test_invert(self, tmp_path, rng):
        matrix = np.array([[0.0, 1.0]])
        plain_path = os.path.join(tmp_path, "plain.pgm")
        inverted_path = os.path.join(tmp_path, "inverted.pgm")
        save_pgm(matrix, plain_path)
        save_pgm(matrix, inverted_path, invert=True)
        assert open(plain_path, "rb").read()[-2:] == bytes([0, 255])
        assert open(inverted_path, "rb").read()[-2:] == bytes([255, 0])

    def test_rejects_non_2d(self, rng, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(rng.standard_normal(4), os.path.join(tmp_path, "bad.pgm"))


class TestSparklines:
    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_constant(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_sparkline_monotone(self):
        line = sparkline(list(range(8)))
        assert line[0] == "▁" and line[-1] == "█"

    def test_forecast_plot_lines(self, rng):
        text = forecast_plot(
            rng.standard_normal((24, 3)), rng.standard_normal((12, 3)), rng.standard_normal((12, 3))
        )
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("history")
        assert lines[2].startswith("actual")

    def test_forecast_plot_without_actual(self, rng):
        text = forecast_plot(rng.standard_normal(24), rng.standard_normal(12))
        assert len(text.splitlines()) == 2

    def test_loss_curve(self):
        text = loss_curve([1.0, 0.5, 0.25], label="train")
        assert text.startswith("train:")
        assert "first=1.0000" in text and "last=0.2500" in text

    def test_loss_curve_empty(self):
        assert "(no data)" in loss_curve([])
