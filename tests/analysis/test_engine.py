"""Engine mechanics: suppressions, baseline round-trip, reporters, CLI."""

import json
import textwrap
from pathlib import Path

from repro.analysis import Analyzer, Baseline
from repro.analysis.__main__ import main
from repro.analysis.engine import parse_file, suppressed_rules
from repro.analysis.rules.bans import PickleBanRule


BAD_SOURCE = """\
import pickle


def save(obj, path):
    with open(path, "wb") as handle:
        pickle.dump(obj, handle)
"""


def write_bad(tmp_path, name="repro/cluster/bad.py", source=BAD_SOURCE):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


class TestSuppressions:
    def run(self, tmp_path, source):
        target = write_bad(tmp_path, source=source)
        return Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path)

    def test_same_line_comment_suppresses(self, tmp_path):
        findings = self.run(
            tmp_path, "import pickle  # repro: disable=pickle-ban\n"
        )
        assert findings == []

    def test_preceding_comment_only_line_suppresses(self, tmp_path):
        findings = self.run(
            tmp_path, "# repro: disable=pickle-ban\nimport pickle\n"
        )
        assert findings == []

    def test_disable_all_suppresses(self, tmp_path):
        findings = self.run(tmp_path, "import pickle  # repro: disable=all\n")
        assert findings == []

    def test_other_rule_in_comment_does_not_suppress(self, tmp_path):
        findings = self.run(
            tmp_path, "import pickle  # repro: disable=replay-alloc\n"
        )
        assert [f.rule for f in findings] == ["pickle-ban"]

    def test_preceding_code_line_comment_does_not_leak_down(self, tmp_path):
        # The disable on line 1 is attached to line 1's (clean) code; it
        # must not silence the violation on line 2.
        findings = self.run(
            tmp_path, "x = 1  # repro: disable=pickle-ban\nimport pickle\n"
        )
        assert [f.rule for f in findings] == ["pickle-ban"]

    def test_suppressed_rules_helper(self, tmp_path):
        target = write_bad(
            tmp_path,
            source="# repro: disable=pickle-ban, replay-alloc\nimport pickle\n",
        )
        context = parse_file(target, tmp_path)
        assert suppressed_rules(context, 2) == {"pickle-ban", "replay-alloc"}
        assert suppressed_rules(context, 1) == {"pickle-ban", "replay-alloc"}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        target = write_bad(tmp_path)
        findings = Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path)
        assert findings

        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings, justification="known").save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded) == len(findings)

        new, grandfathered, stale = reloaded.split(findings)
        assert new == []
        assert len(grandfathered) == len(findings)
        assert stale == []

    def test_fingerprint_survives_line_shift(self, tmp_path):
        target = write_bad(tmp_path)
        baseline = Baseline.from_findings(
            Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path),
            justification="known",
        )
        # Prepend lines: same violation, different line number.
        write_bad(tmp_path, source="#\n#\n#\n" + BAD_SOURCE)
        shifted = Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path)
        new, grandfathered, stale = baseline.split(shifted)
        assert new == [] and len(grandfathered) == len(shifted)

    def test_stale_entries_surface(self, tmp_path):
        target = write_bad(tmp_path)
        findings = Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path)
        baseline = Baseline.from_findings(findings, justification="known")
        # The code gets fixed: every baseline entry is now stale.
        write_bad(tmp_path, source="import json\n")
        new, grandfathered, stale = baseline.split(
            Analyzer(rules=[PickleBanRule]).run([target], root=tmp_path)
        )
        assert new == [] and grandfathered == []
        assert len(stale) == len(findings)

    def test_load_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_bad(tmp_path, source="import json\n")
        code = main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_bad(tmp_path)
        code = main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert code == 1
        out = capsys.readouterr().out
        assert "pickle-ban" in out and "repro/cluster/bad.py" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write_bad(tmp_path)
        baseline = tmp_path / "b.json"
        assert main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.exists()
        # Same tree, baseline applied: clean.
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_no_baseline_overrides_baseline_file(self, tmp_path):
        write_bad(tmp_path)
        baseline = tmp_path / "b.json"
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        code = main(
            [str(tmp_path), "--baseline", str(baseline), "--no-baseline"]
        )
        assert code == 1

    def test_json_reporter_shape(self, tmp_path, capsys):
        write_bad(tmp_path)
        code = main(
            [
                str(tmp_path),
                "--baseline",
                str(tmp_path / "b.json"),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert first["rule"] == "pickle-ban"
        assert first["path"] == "repro/cluster/bad.py"
        assert {"line", "col", "message", "symbol"} <= set(first)

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "lock-discipline",
            "replay-alloc",
            "grad-mode",
            "pickle-ban",
            "except-hygiene",
        ):
            assert rule_id in out
