"""Per-rule fixture tests: each rule fires on a bad snippet, stays silent
on the corresponding good one (the shape the real code uses)."""

from repro.analysis.rules.bans import PickleBanRule
from repro.analysis.rules.exceptions import ExceptHygieneRule
from repro.analysis.rules.grad_mode import GradModeRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.replay_alloc import ReplayAllocRule
from repro.analysis.rules.timing import TimingDisciplineRule


def rule_ids(findings, rule=None):
    return [f.rule for f in findings if rule is None or f.rule == rule]


class TestLockDiscipline:
    BAD = """
        from repro.runtime.annotations import guarded_by

        @guarded_by("_pending", "stats", lock="_lock")
        class Service:
            def __init__(self):
                self._pending = []      # __init__ is exempt
                self.stats = 0

            def submit(self, request):
                self._pending.append(request)   # no lock: flagged
                self.stats += 1                 # no lock: flagged (read+write)
    """

    GOOD = """
        from repro.runtime.annotations import guarded_by, requires_lock, unguarded

        @guarded_by("_pending", "stats", lock="_lock")
        @guarded_by("_shards", lock="_topology")
        class Service:
            def __init__(self):
                self._pending = []
                self.stats = 0
                self._shards = {}

            def submit(self, request):
                with self._lock:
                    self._pending.append(request)
                    self.stats += 1

            def fan_out(self):
                with self._topology.read():
                    keys = list(self._shards)

                    def run(shard_id):            # closure under the lock
                        return self._shards[shard_id]

                    return [run(k) for k in keys]

            def rebalance(self):
                with self._topology.write():
                    self._shards = {}

            @requires_lock("_lock")
            def _flush_locked(self):
                self._pending.clear()

            @unguarded("single-threaded codec")
            def to_state(self):
                return list(self._pending)
    """

    def test_fires_on_unlocked_access(self, lint):
        findings = rule_ids(lint(self.BAD, rules=[LockDisciplineRule]))
        # _pending read + stats read/write sites
        assert findings and set(findings) == {"lock-discipline"}
        assert len(findings) >= 2

    def test_silent_on_disciplined_class(self, lint):
        assert lint(self.GOOD, rules=[LockDisciplineRule]) == []

    def test_messages_name_attribute_and_lock(self, lint):
        findings = lint(self.BAD, rules=[LockDisciplineRule])
        assert any(
            "self._pending" in f.message and "self._lock" in f.message
            for f in findings
        )
        assert all(f.symbol == "Service.submit" for f in findings)

    def test_with_item_expression_checked_against_outer_context(self, lint):
        # The lock expression itself evaluates before the lock is held:
        # indexing a guarded dict to *find* the lock is still unguarded.
        source = """
            from repro.runtime.annotations import guarded_by

            @guarded_by("_locks", lock="_topology")
            class C:
                def use(self, key):
                    with self._locks[key]:
                        pass
        """
        findings = lint(source, rules=[LockDisciplineRule])
        assert rule_ids(findings) == ["lock-discipline"]


class TestReplayAlloc:
    BAD_KERNEL = """
        import numpy as np

        def blur_kernel(x, out=None):
            mx = np.amax(x, axis=-1, keepdims=True)     # no out=: flagged
            tmp = x.copy()                              # flagged
            stacked = np.stack([x, x])                  # flagged
            return np.subtract(x, mx, out=out)
    """

    GOOD_KERNEL = """
        import numpy as np

        def blur_kernel(x, out=None, reduce_buf=None):
            mx = np.amax(x, axis=-1, keepdims=True, out=reduce_buf)
            shifted = np.subtract(x, mx, out=out)
            np.exp(shifted, out=shifted)
            return shifted

        def helper(x):
            return np.stack([x, x])   # not a kernel scope: fine
    """

    BAD_TRACE_SITE = """
        import numpy as np

        def op(a, out_data, rec):
            rec.add(lambda a=a, o=out_data: np.copyto(o, np.exp(a)), out_data)
    """

    GOOD_TRACE_SITE = """
        import numpy as np

        def op(a, out_data, rec):
            rec.add(lambda a=a, o=out_data: np.exp(a, out=o), out_data)

        def op2(a, out_data, rec):
            def run(a=a, o=out_data):
                np.copyto(o, np.broadcast_to(a, o.shape))  # view: exempt
            rec.add(run, out_data)
    """

    def test_fires_inside_kernel_functions(self, lint):
        findings = lint(self.BAD_KERNEL, rules=[ReplayAllocRule])
        assert len(findings) == 3
        assert all(f.symbol == "blur_kernel" for f in findings)

    def test_silent_on_out_parameterised_kernel(self, lint):
        assert lint(self.GOOD_KERNEL, rules=[ReplayAllocRule]) == []

    def test_fires_inside_recorded_lambda(self, lint):
        findings = lint(self.BAD_TRACE_SITE, rules=[ReplayAllocRule])
        assert rule_ids(findings) == ["replay-alloc"]
        assert findings[0].symbol == "op.<replay>"

    def test_silent_on_clean_trace_sites(self, lint):
        assert lint(self.GOOD_TRACE_SITE, rules=[ReplayAllocRule]) == []

    def test_pow_and_matmul_operators_flagged(self, lint):
        source = """
            def op(a, b, o, rec):
                rec.add(lambda a=a, b=b, o=o: (a ** 2, a @ b), o)
        """
        messages = [f.message for f in lint(source, rules=[ReplayAllocRule])]
        assert any("'**'" in m for m in messages)
        assert any("'@'" in m for m in messages)

    # The polymorphic replay dispatch (_replay*/_run_*/bind in nn/plan.py)
    # is a kernel scope too: it runs on every serve.
    BAD_REPLAY_PATH = """
        import numpy as np

        class Plan:
            def _run_sliced(self, x, copy):
                np.copyto(self._x_buf[: x.shape[0]], x)
                out = np.concatenate([self._out, x])     # allocates: flagged
                padded = self._x_buf.copy()              # unconditional: flagged
                return out
    """

    GOOD_REPLAY_PATH = """
        import numpy as np

        class Plan:
            def _run_sliced(self, x, copy):
                np.copyto(self._x_slot.bind(x.shape[0]), x)
                for kernel, arrays in self._bound:
                    kernel(*arrays)
                out = self._out_slot.bind(x.shape[0])
                return out.copy() if copy else out       # copy-out: exempt

            def _bind(self, batch):
                return tuple(slot.bind(batch) for slot in self._slots)

        class _Slot:
            def bind(self, batch):
                return self.array[: batch * self.rows]   # leading-dim view
    """

    def test_replay_paths_scanned_in_plan_module(self, lint):
        findings = lint(
            self.BAD_REPLAY_PATH, path="repro/nn/plan.py", rules=[ReplayAllocRule]
        )
        assert len(findings) == 2
        assert all(f.symbol == "Plan._run_sliced" for f in findings)

    def test_slice_replay_idiom_and_copy_out_exempt(self, lint):
        assert (
            lint(self.GOOD_REPLAY_PATH, path="repro/nn/plan.py", rules=[ReplayAllocRule])
            == []
        )

    def test_replay_path_names_only_special_in_plan_module(self, lint):
        assert lint(self.BAD_REPLAY_PATH, rules=[ReplayAllocRule]) == []


class TestGradMode:
    def test_no_grad_outside_with_flagged(self, lint):
        source = """
            from repro.nn.tensor import no_grad

            def trace(model, x):
                guard = no_grad()        # stashed: flagged
                return model.forward(x)
        """
        findings = lint(source, rules=[GradModeRule])
        assert rule_ids(findings) == ["grad-mode"]

    def test_no_grad_as_context_manager_silent(self, lint):
        source = """
            from repro.nn.tensor import no_grad

            def trace(model, x):
                with no_grad():
                    return model.forward(x)
        """
        assert lint(source, rules=[GradModeRule]) == []

    def test_grad_mode_flag_write_flagged_outside_tensor(self, lint):
        source = """
            from repro.nn.tensor import _grad_mode

            def hack():
                _grad_mode.enabled = False
        """
        findings = lint(source, path="repro/nn/other.py", rules=[GradModeRule])
        assert rule_ids(findings) == ["grad-mode"]
        # ...but nn/tensor.py itself implements no_grad and is exempt.
        assert lint(source, path="repro/nn/tensor.py", rules=[GradModeRule]) == []

    def test_autograd_surface_in_replay_scope_flagged(self, lint):
        source = """
            def op(t, o, rec):
                rec.add(lambda t=t, o=o: t.backward(), o)
        """
        findings = lint(source, rules=[GradModeRule])
        assert rule_ids(findings) == ["grad-mode"]


class TestPickleBan:
    def test_pickle_import_flagged_in_cluster(self, lint):
        source = """
            import pickle

            def save(obj, path):
                with open(path, "wb") as handle:
                    pickle.dump(obj, handle)
        """
        findings = lint(source, path="repro/cluster/bad.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]

    def test_pickle_fine_outside_banned_packages(self, lint):
        source = "import pickle\n"
        assert lint(source, path="repro/viz/helper.py", rules=[PickleBanRule]) == []

    def test_allow_pickle_kwarg_flagged(self, lint):
        source = """
            import numpy as np

            def load(path):
                return np.load(path, allow_pickle=True)
        """
        findings = lint(source, path="repro/streaming/bad.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]

    def test_adhoc_hashing_flagged_but_ring_exempt(self, lint):
        source = """
            import hashlib

            def assign(tenant):
                return hashlib.md5(tenant.encode()).hexdigest()
        """
        findings = lint(source, path="repro/cluster/router.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]
        assert lint(source, path="repro/cluster/ring.py", rules=[PickleBanRule]) == []

    def test_builtin_hash_flagged(self, lint):
        source = """
            def bucket(tenant, n):
                return hash(tenant) % n
        """
        findings = lint(source, path="repro/cluster/router.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]

    def test_wire_transport_in_scope(self, lint):
        # The process-boundary transport is exactly where pickle would be
        # the path of least resistance — the ban must cover it.
        source = """
            import pickle

            def send(sock, message):
                sock.sendall(pickle.dumps(message))
        """
        findings = lint(source, path="repro/wire.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]

    def test_procpool_in_scope(self, lint):
        source = """
            from pickle import loads

            def receive(blob):
                return loads(blob)
        """
        findings = lint(source, path="repro/runtime/procpool.py", rules=[PickleBanRule])
        assert rule_ids(findings) == ["pickle-ban"]
        # The rest of repro.runtime (locks, thread executors) carries no
        # serialised state and stays out of scope.
        assert lint(source, path="repro/runtime/executor.py", rules=[PickleBanRule]) == []

    def test_real_transport_modules_are_clean(self, lint):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for module in (
            "repro/wire.py",
            "repro/runtime/procpool.py",
            "repro/cluster/worker.py",
            "repro/cluster/process.py",
        ):
            source = (root / "src" / module).read_text(encoding="utf-8")
            assert lint(source, path=module, rules=[PickleBanRule]) == [], module


class TestExceptHygiene:
    def test_blind_swallow_flagged(self, lint):
        source = """
            def risky(op):
                try:
                    return op()
                except Exception:
                    pass
        """
        findings = lint(source, rules=[ExceptHygieneRule])
        assert rule_ids(findings) == ["except-hygiene"]

    def test_bare_except_flagged(self, lint):
        source = """
            def risky(op):
                try:
                    return op()
                except:
                    return None
        """
        findings = lint(source, rules=[ExceptHygieneRule])
        assert rule_ids(findings) == ["except-hygiene"]

    def test_reraise_is_clean(self, lint):
        source = """
            def risky(op, rollback):
                try:
                    return op()
                except Exception:
                    rollback()
                    raise
        """
        assert lint(source, rules=[ExceptHygieneRule]) == []

    def test_recording_the_error_is_clean(self, lint):
        source = """
            def risky(op, errors):
                try:
                    return op()
                except Exception as error:
                    errors.append(error)
        """
        assert lint(source, rules=[ExceptHygieneRule]) == []

    def test_narrow_handler_out_of_scope(self, lint):
        source = """
            import os

            def cleanup(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        """
        assert lint(source, rules=[ExceptHygieneRule]) == []


class TestTimingDiscipline:
    def test_module_clock_call_flagged_in_serving(self, lint):
        source = """
            import time

            def flush(service):
                start = time.perf_counter()
                service.flush()
                return time.perf_counter() - start
        """
        findings = lint(source, path="repro/serving/mod.py", rules=[TimingDisciplineRule])
        assert rule_ids(findings) == ["timing-discipline"] * 2
        assert findings[0].symbol == "flush"

    def test_wall_clock_and_aliased_import_flagged(self, lint):
        source = """
            import time as t

            def stamp():
                return t.time()
        """
        findings = lint(source, path="repro/cluster/mod.py", rules=[TimingDisciplineRule])
        assert rule_ids(findings) == ["timing-discipline"]
        assert "time.time()" in findings[0].message

    def test_from_import_alias_flagged(self, lint):
        source = """
            from time import perf_counter as clock

            def wait_time(lock):
                started = clock()
                with lock:
                    return clock() - started
        """
        findings = lint(source, path="repro/runtime/mod.py", rules=[TimingDisciplineRule])
        assert rule_ids(findings) == ["timing-discipline"] * 2
        assert all("time.perf_counter()" in f.message for f in findings)

    def test_obs_helpers_are_clean(self, lint):
        source = """
            from repro import obs

            def flush(service):
                started = obs.now() if obs.metrics_enabled() else 0.0
                service.flush()
                if started:
                    return obs.now() - started
        """
        assert lint(source, path="repro/serving/mod.py", rules=[TimingDisciplineRule]) == []

    def test_sleep_is_not_a_clock(self, lint):
        source = """
            import time

            def backoff():
                time.sleep(0.01)
        """
        assert lint(source, path="repro/cluster/mod.py", rules=[TimingDisciplineRule]) == []

    def test_out_of_scope_packages_unflagged(self, lint):
        source = """
            import time

            def train_epoch(model):
                start = time.perf_counter()
                model.step()
                return time.perf_counter() - start
        """
        assert lint(source, path="repro/training/mod.py", rules=[TimingDisciplineRule]) == []

    def test_inline_disable_suppresses(self, lint):
        source = """
            import time

            def measure(fn):
                start = time.perf_counter()  # repro: disable=timing-discipline
                fn()
                return time.perf_counter() - start  # repro: disable=timing-discipline
        """
        assert lint(source, path="repro/profiling/mod.py", rules=[TimingDisciplineRule]) == []
