"""Shared helpers for analyzer tests: write a snippet, lint it."""

import textwrap
from typing import List

import pytest

from repro.analysis import Analyzer, Finding


@pytest.fixture
def lint(tmp_path):
    """``lint(source, path="repro/mod.py")`` -> findings for that snippet.

    The snippet is written under ``tmp_path`` at the given relative path,
    so package-scoped rules (pickle-ban) see the same layout they would in
    the real tree (e.g. ``repro/cluster/bad.py``).
    """

    def run(source: str, path: str = "repro/snippet.py", rules=None) -> List[Finding]:
        target = tmp_path / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        analyzer = Analyzer(rules=rules)
        # Scan only the file just written (not all of tmp_path) so repeated
        # calls within one test don't see each other's snippets.
        return analyzer.run([target], root=tmp_path)

    return run
