"""Meta-test: the real source tree lints clean against the checked-in
baseline.  This is the same invocation CI runs; if it fails here, either
fix the finding or adjudicate it into analysis-baseline.json with a
justification."""

from pathlib import Path

from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_lints_clean(capsys):
    code = main(
        [
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, f"linter found new violations:\n{out}"


def test_baseline_has_no_stale_entries(capsys):
    main(
        [
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert "stale" not in out.lower() or "0 stale" in out
