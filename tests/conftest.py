"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.data import prepare_forecasting_data
from repro.experiments.profiles import SMOKE


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> ModelConfig:
    """A tiny LiPFormer-compatible configuration used across model tests."""
    return ModelConfig(
        input_length=48,
        horizon=12,
        n_channels=3,
        patch_length=12,
        hidden_dim=16,
        dropout=0.0,
        n_heads=2,
        n_layers=1,
        covariate_numerical_dim=4,
        covariate_categorical_cardinalities=(24, 7, 31, 12, 2),
        covariate_embed_dim=2,
        covariate_hidden_dim=8,
        seed=7,
    )


@pytest.fixture
def no_covariate_config(small_config: ModelConfig) -> ModelConfig:
    """Same as ``small_config`` but without covariate channels."""
    return small_config.with_overrides(
        covariate_numerical_dim=0, covariate_categorical_cardinalities=()
    )


@pytest.fixture
def training_config() -> TrainingConfig:
    """A one-epoch training configuration for fast integration tests."""
    return TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, patience=1, pretrain_epochs=1)


@pytest.fixture(scope="session")
def smoke_profile():
    """The smallest experiment profile (used by experiment-driver tests)."""
    return SMOKE


@pytest.fixture(scope="session")
def etth1_smoke_data():
    """Small pre-windowed ETTh1 data shared across integration tests."""
    return prepare_forecasting_data(
        "ETTh1", input_length=48, horizon=12, n_timestamps=1200, stride=8, seed=5
    )


@pytest.fixture(scope="session")
def cycle_smoke_data():
    """Small pre-windowed Cycle data (explicit covariates) for integration tests."""
    return prepare_forecasting_data(
        "Cycle", input_length=48, horizon=12, n_timestamps=1200, n_channels=3, stride=8, seed=5
    )


def batch_from(data, size: int = 8):
    """Helper: materialise the first ``size`` training windows of a dataset."""
    indices = np.arange(min(size, len(data.train)))
    return data.train.as_arrays(indices)
