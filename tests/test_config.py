"""Tests for the configuration dataclasses."""

import pytest

from repro.config import ModelConfig, TrainingConfig


class TestModelConfig:
    def test_defaults_match_paper_section_iv(self):
        config = ModelConfig()
        assert config.input_length == 720
        assert config.patch_length == 48
        assert config.hidden_dim == 512
        assert config.dropout == 0.5

    def test_n_patches_and_target_patches(self):
        config = ModelConfig(input_length=96, horizon=24, patch_length=24)
        assert config.n_patches == 4
        assert config.n_target_patches == 1
        longer = config.with_overrides(horizon=100)
        assert longer.n_target_patches == 5

    def test_has_covariates(self):
        assert not ModelConfig(covariate_numerical_dim=0).has_covariates
        assert ModelConfig(covariate_numerical_dim=3).has_covariates
        assert ModelConfig(covariate_categorical_cardinalities=(4,)).has_covariates

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ModelConfig(input_length=0)
        with pytest.raises(ValueError):
            ModelConfig(input_length=100, patch_length=48)
        with pytest.raises(ValueError):
            ModelConfig(hidden_dim=0)
        with pytest.raises(ValueError):
            ModelConfig(dropout=-0.1)

    def test_with_overrides_is_a_copy(self):
        config = ModelConfig()
        other = config.with_overrides(horizon=192)
        assert other.horizon == 192
        assert config.horizon == 96


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.epochs == 10
        assert config.batch_size == 256
        assert config.patience == 3
        assert config.lr_decay_gamma == 1.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainingConfig(patience=-1)
        with pytest.raises(ValueError):
            TrainingConfig(lr_decay_gamma=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(lr_decay_gamma=1.5)

    def test_with_overrides(self):
        config = TrainingConfig().with_overrides(epochs=2)
        assert config.epochs == 2
