"""End-to-end integration tests across the whole stack.

These tests exercise the public API the way the examples and benchmarks do:
generate data, train LiPFormer and a baseline, compare, and check that the
paper's qualitative claims hold at a small scale.
"""

import numpy as np
import pytest

from repro import ModelConfig, TrainingConfig, create_model, prepare_forecasting_data
from repro.core import LiPFormer
from repro.core.transplant import CovariateEnrichedModel
from repro.nn import load_module, save_module
from repro.training import Trainer, pretrain_covariate_encoder, run_experiment


def _config(data, hidden=24):
    return ModelConfig(
        input_length=data.input_length,
        horizon=data.horizon,
        n_channels=data.n_channels,
        patch_length=data.input_length // 4,
        hidden_dim=hidden,
        dropout=0.0,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=2,
        covariate_hidden_dim=12,
        seed=3,
    )


@pytest.fixture(scope="module")
def training_data():
    return prepare_forecasting_data(
        "ETTh1", input_length=48, horizon=12, n_timestamps=2000, stride=4, seed=17
    )


@pytest.fixture(scope="module")
def covariate_data():
    # Electricity-Price at a scale where the covariate dependence is clearly
    # learnable (the same scale the quick benchmark profile uses).
    return prepare_forecasting_data(
        "ElectricityPrice", input_length=96, horizon=24, n_timestamps=3000, n_channels=6, stride=4, seed=2021
    )


class TestForecastingPipeline:
    def test_lipformer_beats_predicting_the_mean(self, training_data):
        config = TrainingConfig(epochs=3, batch_size=64, learning_rate=2e-3, patience=5)
        model = LiPFormer(_config(training_data))
        trainer = Trainer(model, config)
        trainer.fit(training_data)
        metrics = trainer.test(training_data)
        # Targets are standardised, so predicting the mean gives MSE ~= 1.
        assert metrics["mse"] < 1.0

    def test_lipformer_competitive_with_dlinear(self, training_data):
        config = TrainingConfig(epochs=3, batch_size=64, learning_rate=2e-3, patience=5)
        results = {}
        for name in ("LiPFormer", "DLinear"):
            model = create_model(name, _config(training_data))
            trainer = Trainer(model, config)
            trainer.fit(training_data)
            results[name] = trainer.test(training_data)["mse"]
        # LiPFormer should be in the same accuracy league as DLinear
        # (within 40% relative), reproducing the paper's competitiveness claim.
        assert results["LiPFormer"] < results["DLinear"] * 1.4

    def test_trained_model_round_trips_through_disk(self, training_data, tmp_path):
        config = TrainingConfig(epochs=1, batch_size=64)
        model = LiPFormer(_config(training_data))
        Trainer(model, config).fit(training_data)
        path = str(tmp_path / "lipformer.npz")
        save_module(model, path)
        clone = LiPFormer(_config(training_data))
        load_module(clone, path)
        batch = training_data.test.as_arrays(np.arange(4))
        np.testing.assert_allclose(
            model.predict(batch["x"], batch["future_numerical"], batch["future_categorical"]),
            clone.predict(batch["x"], batch["future_numerical"], batch["future_categorical"]),
            rtol=1e-5,
        )


class TestWeakDataEnriching:
    def test_covariate_guidance_helps_on_covariate_driven_data(self, covariate_data):
        """Reproduces the shape of Figure 6: covariates reduce the error on
        the Electricity-Price dataset, whose targets are driven by the
        forecast covariates."""
        config = TrainingConfig(epochs=3, batch_size=64, learning_rate=1e-3, patience=5, pretrain_epochs=1)
        with_encoder = run_experiment(
            LiPFormer(_config(covariate_data, hidden=48)),
            covariate_data,
            config,
            model_name="LiPFormer",
            pretrain=True,
        )
        without_encoder = run_experiment(
            LiPFormer(_config(covariate_data, hidden=48), use_covariate_guidance=False),
            covariate_data,
            config,
            model_name="LiPFormer w/o enc",
            pretrain=False,
        )
        assert with_encoder.mse < without_encoder.mse

    def test_transplanting_encoder_onto_informer(self, covariate_data):
        """Table XII's shape: the Covariate Encoder can wrap another model
        and the enriched model trains end to end."""
        config = TrainingConfig(epochs=2, batch_size=64, learning_rate=2e-3, pretrain_epochs=1)
        base = create_model("Informer", _config(covariate_data))
        enriched = CovariateEnrichedModel(base, _config(covariate_data))
        pretrain_covariate_encoder(enriched, covariate_data, config)
        trainer = Trainer(enriched, config)
        trainer.fit(covariate_data)
        metrics = trainer.test(covariate_data)
        assert np.isfinite(metrics["mse"])

    def test_pretraining_produces_aligned_logits(self, covariate_data):
        """Figure 7's shape: after pre-training, the diagonal of the logits
        matrix dominates the off-diagonal entries."""
        config = TrainingConfig(epochs=1, batch_size=64, pretrain_epochs=3)
        model = LiPFormer(_config(covariate_data))
        dual_encoder = model.build_dual_encoder()
        from repro.training import ContrastivePretrainer

        ContrastivePretrainer(dual_encoder, config).fit(covariate_data)
        batch = covariate_data.validation.as_arrays(np.arange(min(48, len(covariate_data.validation))))
        logits = dual_encoder.logits_matrix(
            batch["y"], batch["future_numerical"], batch["future_categorical"]
        )
        diagonal = np.diag(logits).mean()
        off_diagonal = logits[~np.eye(len(logits), dtype=bool)].mean()
        assert diagonal > off_diagonal


class TestEfficiencyClaims:
    def test_lipformer_has_fewer_parameters_than_patchtst(self, training_data):
        config = _config(training_data, hidden=64)
        lipformer = create_model("LiPFormer", config)
        patchtst = create_model("PatchTST", config)
        assert lipformer.num_parameters() < patchtst.num_parameters()

    def test_lipformer_inference_faster_than_vanilla_transformer(self, training_data):
        from repro.profiling import time_inference

        config = _config(training_data, hidden=64)
        lipformer = create_model("LiPFormer", config)
        transformer = create_model("Transformer", config)
        assert time_inference(lipformer, batch_size=16, repeats=3) < time_inference(
            transformer, batch_size=16, repeats=3
        )
