"""Property stress: random op interleavings vs a serial replay oracle.

Hypothesis drives randomized schedules of ``ingest`` / ``drop`` /
``checkpoint`` / ``add_shard`` / ``remove_shard`` / ``failover`` against
a live cluster while a plain-Python oracle tracks, per tenant, the rows
that should survive.  The oracle is updated *through the cluster's own
FailoverReport* — lost tenants vanish, restored tenants roll back to the
checkpoint watermark — and the report's stale accounting is cross-checked
against the oracle's row counts.  At the end, an unsharded
:class:`StreamingForecaster` replays each surviving tenant's oracle rows
and every forecast must match the cluster bit-for-bit.

Runs on both backends: the thread backend carries the example budget
(cheap), the process backend gets a few examples with a real ``kill -9``
before each failover (spawning workers per example is expensive).
"""

import os
import signal
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ProcessCoordinator, ServiceSpec, ShardedForecaster
from repro.config import ModelConfig
from repro.streaming import StreamingForecaster

INPUT_LENGTH = 16
HORIZON = 4
CHANNELS = 2
MAX_SHARDS = 4

SPEC = ServiceSpec(
    config=ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=CHANNELS,
        patch_length=4, hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=7,
    ),
    max_batch_size=16,
)

_tenant = st.integers(min_value=0, max_value=5)
_op = st.one_of(
    st.tuples(st.just("ingest"), _tenant, st.integers(min_value=1, max_value=6)),
    st.tuples(st.just("drop"), _tenant),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("add")),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=9)),
    st.tuples(st.just("failover"), st.integers(min_value=0, max_value=9)),
)
_schedule = st.lists(_op, min_size=4, max_size=14)


def run_drill(cluster, ops, data_seed, kill_for_real):
    """Apply the schedule; return the oracle's surviving per-tenant rows."""
    rng = np.random.default_rng(data_seed)
    rows = {}   # tenant -> [row-block, ...] appended in ingest order
    ckpt = {}   # deep enough copy of `rows` at the last checkpoint
    with tempfile.TemporaryDirectory() as workdir:
        n_checkpoints = 0
        for op in ops:
            kind = op[0]
            if kind == "ingest":
                tenant = f"tenant-{op[1]}"
                block = rng.normal(size=(op[2], CHANNELS)).astype(np.float32)
                cluster.ingest(tenant, block)
                rows.setdefault(tenant, []).append(block)
            elif kind == "drop":
                tenant = f"tenant-{op[1]}"
                if tenant in rows:
                    cluster.drop(tenant)
                    del rows[tenant]
            elif kind == "checkpoint":
                if not rows:
                    continue
                path = os.path.join(workdir, f"ckpt-{n_checkpoints}")
                if n_checkpoints == 0:
                    cluster.save(path)
                else:
                    cluster.save_incremental(path)
                n_checkpoints += 1
                ckpt = {tenant: list(blocks) for tenant, blocks in rows.items()}
            elif kind == "add":
                if len(cluster.shard_ids()) < MAX_SHARDS:
                    cluster.add_shard()
            elif kind == "remove":
                shard_ids = sorted(cluster.shard_ids())
                if len(shard_ids) > 1:
                    cluster.remove_shard(shard_ids[op[1] % len(shard_ids)])
            elif kind == "failover":
                shard_ids = sorted(cluster.shard_ids())
                if n_checkpoints == 0 or len(shard_ids) < 2:
                    continue
                victim = shard_ids[op[1] % len(shard_ids)]
                if kill_for_real:
                    os.kill(cluster.worker_pid(victim), signal.SIGKILL)
                report = cluster.failover(victim)
                # Cross-check the stale accounting against oracle counts
                # *before* rolling the oracle back: rows rolled back must
                # equal live-minus-checkpoint exactly.
                for tenant, n_stale in report.stale.items():
                    live = sum(len(b) for b in rows[tenant])
                    checkpointed = sum(len(b) for b in ckpt[tenant])
                    assert n_stale == live - checkpointed
                # The report *is* the oracle update: anything it calls lost
                # is gone, anything restored rolls back to the checkpoint.
                for tenant in report.lost:
                    rows.pop(tenant, None)
                for tenant in report.restored:
                    rows[tenant] = list(ckpt[tenant])
    return rows


def assert_matches_serial_replay(cluster, rows):
    assert sorted(cluster.tenants()) == sorted(rows)
    if not rows:
        return
    reference = StreamingForecaster(SPEC.build())
    for tenant, blocks in rows.items():
        reference.ingest(tenant, np.concatenate(blocks))
    handles = cluster.forecast_all()
    expected = {t: reference.forecast(t) for t in rows}
    reference.flush()
    for tenant in rows:
        np.testing.assert_array_equal(
            handles[tenant].result(), expected[tenant].result()
        )


class TestScheduleParity:
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_schedule, data_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_thread_backend(self, ops, data_seed):
        cluster = ShardedForecaster(SPEC, n_shards=2)
        rows = run_drill(cluster, ops, data_seed, kill_for_real=False)
        assert_matches_serial_replay(cluster, rows)

    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_schedule, data_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_process_backend_with_real_kills(self, ops, data_seed):
        with ProcessCoordinator(SPEC, n_shards=2, warmup=False) as cluster:
            rows = run_drill(cluster, ops, data_seed, kill_for_real=True)
            assert_matches_serial_replay(cluster, rows)

    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_schedule, data_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_backends_agree_on_identical_schedules(self, ops, data_seed):
        thread = ShardedForecaster(SPEC, n_shards=2)
        thread_rows = run_drill(thread, ops, data_seed, kill_for_real=False)
        with ProcessCoordinator(SPEC, n_shards=2, warmup=False) as process:
            process_rows = run_drill(process, ops, data_seed, kill_for_real=True)
            assert sorted(process_rows) == sorted(thread_rows)
            thread_handles = thread.forecast_all()
            process_handles = process.forecast_all()
            for tenant in thread_rows:
                np.testing.assert_array_equal(
                    process_handles[tenant].result(), thread_handles[tenant].result()
                )
