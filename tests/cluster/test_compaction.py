"""Snapshot-chain compaction: bound replay cost, GC superseded links.

Long-running deployments checkpoint incrementally, so the chain grows
one delta per checkpoint and every restore/failover replays all of it.
:func:`repro.cluster.compact_chain` folds ``[full, d1 … dn]`` into one
fresh full snapshot and deletes the superseded files; the coordinator's
:meth:`compact` re-points the live chain so subsequent incrementals and
failovers use the compacted base.  Compaction must be a pure
representation change — every observable (forecasts, tenant order,
chain identity, tip sequence) survives bit-identically.
"""

import os

import numpy as np
import pytest

from repro.cluster import (
    ProcessCoordinator,
    ServiceSpec,
    ShardedForecaster,
    compact_chain,
    read_snapshot,
    resolve_chain,
)
from repro.config import ModelConfig

INPUT_LENGTH = 16
HORIZON = 4
CHANNELS = 2


@pytest.fixture(scope="module")
def spec():
    return ServiceSpec(
        config=ModelConfig(
            input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=CHANNELS,
            patch_length=4, hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=3,
        ),
        max_batch_size=16,
    )


def grow_chain(cluster, tmp_path, rng, deltas=3):
    """Full save + ``deltas`` incrementals with churn between links."""
    for i in range(8):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(INPUT_LENGTH + 2, CHANNELS)).astype(np.float32))
    cluster.save(str(tmp_path / "base"))
    for n in range(deltas):
        cluster.ingest(f"tenant-{n}", rng.normal(size=(3, CHANNELS)).astype(np.float32))
        if n == 1:
            cluster.drop("tenant-7")
        cluster.save_incremental(str(tmp_path / f"d{n}"))
    return cluster.checkpoint_chain()


def forecast_map(target):
    return {t: h.result() for t, h in target.forecast_all().items()}


def snapshot_file(path):
    return path if path.endswith(".npz") else path + ".npz"


class TestCompactChain:
    def test_resolved_state_survives_compaction(self, spec, tmp_path, rng):
        cluster = ShardedForecaster(spec, n_shards=2)
        chain = grow_chain(cluster, tmp_path, rng)
        expected = resolve_chain(chain)
        original = forecast_map(ShardedForecaster.load_chain(spec, chain))
        output = compact_chain(chain, output=str(tmp_path / "compacted"))
        compacted = read_snapshot(output)
        assert compacted["kind"] == "full"
        # Chain identity and tip sequence carry over, so the compacted
        # base can keep accepting deltas where the original chain left off.
        assert compacted["chain_id"] == expected["chain_id"]
        assert compacted["seq"] == expected["seq"]
        restored = forecast_map(ShardedForecaster.load(spec, output))
        for tenant, forecast in restored.items():
            np.testing.assert_array_equal(forecast, original[tenant])

    def test_superseded_links_are_garbage_collected(self, spec, tmp_path, rng):
        cluster = ShardedForecaster(spec, n_shards=2)
        chain = grow_chain(cluster, tmp_path, rng)
        files = [snapshot_file(p) for p in chain]
        assert all(os.path.exists(f) for f in files)
        output = compact_chain(chain)  # default: overwrite the base in place
        assert output == chain[0]
        assert os.path.exists(snapshot_file(output))
        for stale in files[1:]:
            assert not os.path.exists(stale)

    def test_remove_false_keeps_the_original_chain(self, spec, tmp_path, rng):
        cluster = ShardedForecaster(spec, n_shards=2)
        chain = grow_chain(cluster, tmp_path, rng)
        compact_chain(chain, output=str(tmp_path / "compacted"), remove=False)
        assert all(os.path.exists(snapshot_file(p)) for p in chain)

    def test_dropped_tenant_stays_dropped_through_compaction(self, spec, tmp_path, rng):
        cluster = ShardedForecaster(spec, n_shards=2)
        chain = grow_chain(cluster, tmp_path, rng)  # drops tenant-7 at d1
        output = compact_chain(chain, output=str(tmp_path / "compacted"))
        restored = ShardedForecaster.load(spec, output)
        assert "tenant-7" not in restored.tenants()


class TestLiveCompact:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_compact_repoints_chain_and_keeps_forecasts(self, spec, tmp_path, rng, backend):
        if backend == "thread":
            cluster = ShardedForecaster(spec, n_shards=2)
        else:
            cluster = ProcessCoordinator(spec, n_shards=2)
        try:
            grow_chain(cluster, tmp_path, rng)
            before = forecast_map(cluster)
            assert len(cluster.checkpoint_chain()) == 4
            output = cluster.compact()
            assert cluster.checkpoint_chain() == [output]
            # Still restorable, still bit-identical.
            loader = ShardedForecaster if backend == "thread" else ProcessCoordinator
            restored = loader.load(spec, output)
            try:
                after = forecast_map(restored)
                for tenant in before:
                    np.testing.assert_array_equal(after[tenant], before[tenant])
            finally:
                if backend == "process":
                    restored.close()
        finally:
            if backend == "process":
                cluster.close()

    def test_incremental_chains_onto_compacted_base(self, spec, tmp_path, rng):
        cluster = ShardedForecaster(spec, n_shards=2)
        grow_chain(cluster, tmp_path, rng)
        cluster.compact()
        cluster.ingest("tenant-2", rng.normal(size=(5, CHANNELS)).astype(np.float32))
        cluster.save_incremental(str(tmp_path / "post"))
        chain = cluster.checkpoint_chain()
        assert len(chain) == 2
        restored = ShardedForecaster.load_chain(spec, chain)
        for tenant, forecast in forecast_map(cluster).items():
            np.testing.assert_array_equal(forecast_map(restored)[tenant], forecast)

    def test_failover_replays_the_compacted_file(self, spec, tmp_path, rng):
        with ProcessCoordinator(spec, n_shards=3) as cluster:
            grow_chain(cluster, tmp_path, rng)
            baseline = forecast_map(cluster)
            cluster.compact()
            victim = cluster.shard_for("tenant-0")
            cluster.kill_worker(victim)
            report = cluster.failover(victim)
            assert report.complete
            recovered = forecast_map(cluster)
            for tenant in baseline:
                np.testing.assert_array_equal(recovered[tenant], baseline[tenant])

    def test_compact_without_chain_refuses(self, spec):
        cluster = ShardedForecaster(spec, n_shards=2)
        with pytest.raises(RuntimeError, match="chain"):
            cluster.compact()

    def test_cross_backend_load_of_compacted_chain(self, spec, tmp_path, rng):
        # A thread cluster compacts; a process cluster restores the result
        # (and vice versa via TestLiveCompact's parametrised round trip).
        cluster = ShardedForecaster(spec, n_shards=2)
        grow_chain(cluster, tmp_path, rng)
        output = cluster.compact()
        expected = forecast_map(cluster)
        with ProcessCoordinator.load(spec, output) as process:
            produced = forecast_map(process)
            for tenant in expected:
                np.testing.assert_array_equal(produced[tenant], expected[tenant])
