"""Tests for replica failover: a dead shard's arc re-homes to survivors."""

import numpy as np
import pytest

from repro.cluster import (
    ShardedForecaster,
    compare_cluster_to_unsharded,
    replay_cluster,
)
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster

INPUT_LENGTH = 32
HORIZON = 8


@pytest.fixture
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service_factory(config):
    def factory():
        return ForecastService(LiPFormer(config), max_batch_size=16)
    return factory


@pytest.fixture
def cluster(service_factory, rng):
    cluster = ShardedForecaster(service_factory, n_shards=3)
    for i in range(18):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(40, 2)).astype(np.float32))
    return cluster


def victims_of(cluster, shard_id):
    return [t for t in cluster.tenants() if cluster.shard_for(t) == shard_id]


class TestFailover:
    def test_dead_shards_tenants_rehome_to_survivors(self, cluster, rng, tmp_path):
        cluster.save(str(tmp_path / "ckpt"))
        victim = "shard-1"
        victims = victims_of(cluster, victim)
        assert victims, "need a populated shard for a meaningful failover"
        report = cluster.failover(victim)
        assert report.complete
        assert report.shard_id == victim
        assert sorted(report.restored) == sorted(victims)
        assert victim not in cluster.ring
        assert victim not in cluster.shard_ids()
        # Every re-homed tenant is live on its new owner and forecastable.
        for tenant, owner in report.restored.items():
            assert cluster.shard_for(tenant) == owner
            assert tenant in cluster.shard(owner).store
        for handle in cluster.forecast_all().values():
            assert handle.result().shape == (HORIZON, 2)

    def test_failover_restores_from_newest_chain_link(
        self, cluster, service_factory, rng, tmp_path
    ):
        """Arrivals captured by a delta checkpoint must not be rolled back."""
        cluster.save(str(tmp_path / "base"))
        victim = "shard-2"
        tenant = victims_of(cluster, victim)[0]
        cluster.ingest(tenant, rng.normal(size=(3, 2)).astype(np.float32))
        cluster.save_incremental(str(tmp_path / "d1"))
        before = cluster.shard(victim).store.observed(tenant)
        report = cluster.failover(victim)
        assert report.complete, f"stale={report.stale} lost={report.lost}"
        assert cluster.shard(cluster.shard_for(tenant)).store.observed(tenant) == before

    def test_uncheckpointed_arrivals_are_reported_stale(self, cluster, rng, tmp_path):
        cluster.save(str(tmp_path / "ckpt"))
        victim = "shard-0"
        tenant = victims_of(cluster, victim)[0]
        cluster.ingest(tenant, rng.normal(size=(5, 2)).astype(np.float32))
        report = cluster.failover(victim)
        assert report.stale == {tenant: 5}
        assert not report.lost
        # The tenant survived, minus exactly the rolled-back rows.
        owner = cluster.shard(cluster.shard_for(tenant))
        assert owner.store.observed(tenant) == 40

    def test_failover_auto_warms_adopting_shards(self, cluster, rng, tmp_path):
        """The first post-failover forecast must replay a compiled plan —
        no eager fallback, no on-request trace: failover() warms every
        shard that adopted tenants before returning."""
        cluster.save(str(tmp_path / "ckpt"))
        report = cluster.failover("shard-1")
        targets = sorted(set(report.restored.values()))
        assert targets, "need adopting shards for a meaningful warmup check"
        predictors = {
            sid: cluster.shard(sid).service.model.compiled_predictor() for sid in targets
        }
        for predictor in predictors.values():
            assert predictor.traces >= 1          # warmed inside failover()
        before = {
            sid: (p.traces, p.fallbacks, p.hits) for sid, p in predictors.items()
        }
        for tenant in report.restored:
            cluster.forecast(tenant)
        cluster.flush()
        for sid, predictor in predictors.items():
            traces, fallbacks, hits = before[sid]
            assert predictor.traces == traces, f"{sid} traced on the request path"
            assert predictor.fallbacks == fallbacks, f"{sid} fell back to eager"
            assert predictor.hits > hits, f"{sid} never replayed its warm plan"

    def test_dropped_then_recreated_tenant_is_not_resurrected(
        self, cluster, rng, tmp_path
    ):
        """A checkpoint taken before a drop must not bring deleted history
        back: the re-created incarnation was never checkpointed → lost."""
        cluster.save(str(tmp_path / "ckpt"))
        victim = "shard-1"
        tenant = victims_of(cluster, victim)[0]
        cluster.drop(tenant)
        cluster.ingest(tenant, rng.normal(size=(2, 2)).astype(np.float32))
        report = cluster.failover(victim)
        assert tenant in report.lost
        assert tenant not in report.restored
        assert not report.complete
        assert tenant not in cluster.tenants(), "deleted history resurrected"

    def test_recreated_tenant_with_more_rows_is_still_not_resurrected(
        self, cluster, rng, tmp_path
    ):
        """Generation tracking catches the case row counts cannot: the new
        incarnation out-ingested the deleted one before the crash."""
        cluster.save(str(tmp_path / "ckpt"))
        victim = "shard-1"
        tenant = victims_of(cluster, victim)[0]   # checkpointed with 40 rows
        cluster.drop(tenant)
        cluster.ingest(tenant, rng.normal(size=(45, 2)).astype(np.float32))
        report = cluster.failover(victim)
        assert tenant in report.lost
        assert tenant not in cluster.tenants(), "deleted history resurrected"

    def test_recreated_tenant_on_a_different_shard_is_not_resurrected(
        self, cluster, rng, tmp_path
    ):
        """Per-store tombstones cannot follow a key across a rebalance; the
        cluster-level dropped-since-checkpoint record must."""
        cluster.save(str(tmp_path / "ckpt"))
        tenant = "tenant-0"
        cluster.drop(tenant)
        cluster.add_shard()                      # ring changes after the drop
        cluster.ingest(tenant, rng.normal(size=(45, 2)).astype(np.float32))
        victim = cluster.shard_for(tenant)
        report = cluster.failover(victim)
        assert tenant in report.lost
        assert tenant not in cluster.tenants(), "deleted history resurrected"

    def test_never_checkpointed_tenants_are_reported_lost(self, cluster, rng, tmp_path):
        cluster.save(str(tmp_path / "ckpt"))
        victim = "shard-1"
        newcomer = next(
            f"late-{i}" for i in range(1000) if cluster.shard_for(f"late-{i}") == victim
        )
        cluster.ingest(newcomer, rng.normal(size=(10, 2)).astype(np.float32))
        report = cluster.failover(victim)
        assert report.lost == [newcomer]
        assert not report.complete
        assert newcomer not in cluster.tenants()

    def test_failover_without_checkpoint_refuses(self, cluster):
        with pytest.raises(RuntimeError, match="checkpoint"):
            cluster.failover("shard-0")

    def test_failover_unknown_or_last_shard(self, service_factory, rng, tmp_path):
        cluster = ShardedForecaster(service_factory, n_shards=1)
        cluster.ingest("a", rng.normal(size=(4, 2)))
        cluster.save(str(tmp_path / "ckpt"))
        with pytest.raises(KeyError, match="unknown shard"):
            cluster.failover("nope")
        with pytest.raises(ValueError, match="last shard"):
            cluster.failover("shard-0")

    def test_explicit_checkpoint_paths_override_the_chain(
        self, cluster, service_factory, rng, tmp_path
    ):
        old = str(tmp_path / "old")
        cluster.save(old)
        victim = "shard-1"
        tenant = victims_of(cluster, victim)[0]
        cluster.ingest(tenant, rng.normal(size=(2, 2)).astype(np.float32))
        cluster.save(str(tmp_path / "new"))   # chain now points at "new"
        report = cluster.failover(victim, checkpoint_paths=[old])
        # Restoring from the *old* snapshot rolls those 2 rows back.
        assert report.stale == {tenant: 2}

    def test_dead_shard_history_stays_counted(self, cluster, rng, tmp_path):
        for handle in cluster.forecast_all().values():
            handle.result()
        cluster.save(str(tmp_path / "ckpt"))
        want_store = cluster.store_stats()
        want_service = cluster.service_stats()
        cluster.failover("shard-1")
        assert cluster.store_stats() == want_store
        assert cluster.service_stats() == want_service

    def test_failed_over_cluster_keeps_checkpointing(self, cluster, rng, tmp_path):
        """The chain survives a failover: deltas keep extending it and the
        re-homed placement is captured by the next link."""
        paths = [str(tmp_path / "base")]
        cluster.save(paths[0])
        report = cluster.failover("shard-2")
        paths.append(str(tmp_path / "d1"))
        cluster.save_incremental(paths[-1])
        revived = ShardedForecaster.load_chain(cluster.service_factory, paths)
        assert revived.shard_ids() == cluster.shard_ids()
        assert revived.tenants() == cluster.tenants()
        for tenant, owner in report.restored.items():
            assert revived.shard_for(tenant) == owner


class TestFailoverParity:
    def test_failover_of_checkpointed_shard_is_bit_identical(
        self, cluster, service_factory, rng, tmp_path
    ):
        """Acceptance: checkpoint + failover mid-stream changes nothing.

        A shard that dies right after a checkpoint loses no arrivals, so
        the cluster's forecasts — before and after the failover — must be
        bit-identical to an uninterrupted, unsharded forecaster fed the
        same per-tenant streams.
        """
        steps = INPUT_LENGTH + 16
        t = np.arange(steps, dtype=np.float32)
        streams = {
            f"tenant-{i}": (
                np.sin(2 * np.pi * (t / 24.0 + i / 9.0))[:, None].repeat(2, axis=1)
                + rng.normal(scale=0.25, size=(steps, 2))
            ).astype(np.float32)
            for i in range(9)
        }
        reference = StreamingForecaster(service_factory())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)

        cluster = ShardedForecaster(service_factory, n_shards=3)
        events = {}

        def crash(step):
            if step == INPUT_LENGTH + 8:
                # Checkpoint, then the shard "dies" before any new arrival:
                # nothing to lose, so recovery must be invisible.
                cluster.save(str(tmp_path / "ckpt"))
                victim = cluster.shard_ids()[0]
                events["victims"] = victims_of(cluster, victim)
                events["report"] = cluster.failover(victim)

        produced = replay_cluster(cluster, streams, warmup=INPUT_LENGTH, on_tick=crash)
        assert events["victims"], "the dead shard must have been serving tenants"
        assert events["report"].complete
        report = compare_cluster_to_unsharded(produced, expected)
        assert report.bit_identical, f"max |Δ| = {report.max_abs_error}"
        assert report.windows_compared == 9 * (steps - INPUT_LENGTH + 1)
