"""Tests for ClusterSpec validation and its build_cluster integration."""

import pytest

from repro.cluster import ClusterSpec, build_cluster, validate_cluster_timeouts
from repro.cluster.spec import ServiceSpec
from repro.config import ModelConfig

CONFIG = ModelConfig(
    input_length=16, horizon=4, n_channels=1, patch_length=4,
    hidden_dim=8, dropout=0.0, n_heads=2, n_layers=1, seed=1,
)


class TestTimeoutValidation:
    def test_accepts_sane_budgets(self):
        validate_cluster_timeouts(30.0, 2.0)

    @pytest.mark.parametrize(
        "request_timeout,heartbeat_timeout,message",
        [
            (0.0, 1.0, "request_timeout"),
            (-5.0, 1.0, "request_timeout"),
            (10.0, 0.0, "heartbeat_timeout"),
            (10.0, -1.0, "heartbeat_timeout"),
            (5.0, 5.0, "smaller than"),
            (5.0, 9.0, "smaller than"),
        ],
    )
    def test_rejects_bad_budgets(self, request_timeout, heartbeat_timeout, message):
        with pytest.raises(ValueError, match=message):
            validate_cluster_timeouts(request_timeout, heartbeat_timeout)


class TestClusterSpecValidation:
    def test_defaults_validate(self):
        spec = ClusterSpec()
        assert spec.backend == "thread"
        assert spec.heartbeat_timeout < spec.request_timeout

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"backend": "fiber"},
            {"request_timeout": 0.0},
            {"heartbeat_timeout": 0.0},
            {"request_timeout": 1.0, "heartbeat_timeout": 1.0},
            {"retry_attempts": 0},
            {"retry_base": 0.0},
            {"retry_base": 2.0, "retry_cap": 1.0},
            {"breaker_threshold": 0},
            {"breaker_reset": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)


class TestBuildClusterIntegration:
    def test_thread_backend_honours_the_spec(self):
        spec = ClusterSpec(n_shards=3, backend="thread", vnodes=16)
        cluster = build_cluster(
            ServiceSpec(config=CONFIG, compiled=False), cluster=spec
        )
        assert len(cluster.shard_ids()) == 3

    def test_spec_and_loose_kwargs_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="either"):
            build_cluster(
                ServiceSpec(config=CONFIG, compiled=False),
                n_shards=2,
                cluster=ClusterSpec(),
            )

    def test_process_backend_carries_resilience_knobs(self):
        spec = ClusterSpec(
            n_shards=1, backend="process", request_timeout=17.0,
            heartbeat_timeout=3.0, retry_attempts=5, breaker_threshold=4,
            breaker_reset=1.5,
        )
        cluster = build_cluster(
            ServiceSpec(config=CONFIG, compiled=False), cluster=spec
        )
        try:
            assert cluster.request_timeout == 17.0
            assert cluster.heartbeat_timeout == 3.0
            shard = cluster._shards[cluster.shard_ids()[0]]
            assert shard.retry.max_attempts == 5
            assert shard.breaker.failure_threshold == 4
            assert shard.breaker.reset_timeout == 1.5
        finally:
            cluster.close()

    def test_coordinator_rejects_inverted_timeouts_directly(self):
        from repro.cluster import ProcessCoordinator

        with pytest.raises(ValueError, match="smaller than"):
            ProcessCoordinator(
                ServiceSpec(config=CONFIG, compiled=False),
                n_shards=1,
                request_timeout=1.0,
                heartbeat_timeout=2.0,
            )
