"""Compiled serving through the sharded cluster: parity and plan invalidation."""

import numpy as np
import pytest

from repro.cluster import ShardedForecaster, compare_cluster_to_unsharded, replay_cluster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster


@pytest.fixture
def config():
    return ModelConfig(
        input_length=32, horizon=8, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, seed=31,
    )


def make_streams(rng, n_tenants, steps, channels=2):
    streams = {}
    t = np.arange(steps, dtype=np.float32)
    for i in range(n_tenants):
        seasonal = np.cos(2 * np.pi * (t / 16.0 + i / max(1, n_tenants)))[:, None]
        noise = rng.normal(scale=0.2, size=(steps, channels))
        streams[f"tenant-{i}"] = ((i + 1) * seasonal + noise).astype(np.float32)
    return streams


class TestCompiledClusterParity:
    def test_compiled_cluster_matches_eager_unsharded(self, config, rng):
        """Sharded + compiled must equal unsharded + eager, bit for bit."""
        streams = make_streams(rng, 6, 44)
        warmup = config.input_length

        cluster = ShardedForecaster(
            lambda: ForecastService(LiPFormer(config), max_batch_size=8, compiled=True),
            n_shards=3,
        )
        cluster.warmup()
        cluster_forecasts = replay_cluster(cluster, streams, warmup)

        reference = StreamingForecaster(
            ForecastService(LiPFormer(config), max_batch_size=8, compiled=False)
        )
        reference_forecasts = replay_cluster(reference, streams, warmup)

        report = compare_cluster_to_unsharded(cluster_forecasts, reference_forecasts)
        report.raise_on_mismatch()
        assert report.bit_identical

    def test_migrated_tenants_get_fresh_plans_on_the_new_shard(self, config, rng):
        """add_shard mid-stream: rebalanced tenants serve from a shard whose
        model traced its own plans; outputs still match the eager reference."""
        streams = make_streams(rng, 6, 44)
        warmup = config.input_length

        cluster = ShardedForecaster(
            lambda: ForecastService(LiPFormer(config), max_batch_size=8, compiled=True),
            n_shards=2,
        )

        def on_tick(step):
            if step == warmup + 4:
                cluster.add_shard()

        cluster_forecasts = replay_cluster(cluster, streams, warmup, on_tick=on_tick)
        reference = StreamingForecaster(
            ForecastService(LiPFormer(config), max_batch_size=8, compiled=False)
        )
        reference_forecasts = replay_cluster(reference, streams, warmup)
        report = compare_cluster_to_unsharded(cluster_forecasts, reference_forecasts)
        report.raise_on_mismatch()

    def test_restored_cluster_serves_compiled_and_matches(self, config, rng, tmp_path):
        """save → load builds fresh services (fresh models, no stale plans);
        the restored cluster's compiled forecasts equal the original's."""
        streams = make_streams(rng, 4, 40)
        factory = lambda: ForecastService(LiPFormer(config), max_batch_size=8, compiled=True)
        cluster = ShardedForecaster(factory, n_shards=2)
        for tenant, values in streams.items():
            cluster.ingest(tenant, values)
        path = str(tmp_path / "cluster.npz")
        cluster.save(path)

        revived = ShardedForecaster.load(factory, path)
        # load() auto-warms every restored replica: the first forecasts
        # below replay compiled plans without tracing on the request path.
        for shard_id in revived.shard_ids():
            assert revived.shard(shard_id).service.model.compiled_predictor().traces >= 1
        original = {t: h.result() for t, h in cluster.forecast_all().items()}
        restored = {t: h.result() for t, h in revived.forecast_all().items()}
        for tenant in streams:
            assert np.array_equal(original[tenant], restored[tenant])


class TestClusterPlanInvalidation:
    def test_weight_swap_on_live_shards_never_serves_stale_plans(self, config, rng):
        """Hot-swapping model weights (load_state_dict on every replica) must
        invalidate traced plans: the next fan-out serves the new weights."""
        streams = make_streams(rng, 6, 36)
        cluster = ShardedForecaster(
            lambda: ForecastService(LiPFormer(config), max_batch_size=8, compiled=True),
            n_shards=2,
        )
        for tenant, values in streams.items():
            cluster.ingest(tenant, values)
        before = {t: h.result() for t, h in cluster.forecast_all().items()}

        # One trained-elsewhere checkpoint, swapped into every replica.
        new_state = {
            name: value + rng.normal(scale=0.05, size=value.shape).astype(value.dtype)
            for name, value in LiPFormer(config).state_dict().items()
        }
        models = []
        for shard_id in cluster.shard_ids():
            model = cluster.shard(shard_id).service.model
            model.load_state_dict(new_state)
            models.append(model)

        after = {t: h.result() for t, h in cluster.forecast_all().items()}

        # Eager reference cluster built directly on the new weights.
        def fresh_service():
            model = LiPFormer(config)
            model.load_state_dict(new_state)
            return ForecastService(model, max_batch_size=8, compiled=False)

        reference = ShardedForecaster(fresh_service, n_shards=2)
        for tenant, values in streams.items():
            reference.ingest(tenant, values)
        expected = {t: h.result() for t, h in reference.forecast_all().items()}

        for tenant in streams:
            assert np.array_equal(after[tenant], expected[tenant]), tenant
            assert not np.array_equal(after[tenant], before[tenant])
        assert any(m.compiled_predictor().invalidations >= 1 for m in models)
