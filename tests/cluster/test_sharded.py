"""Tests for the sharded forecasting cluster (routing, rebalance, parity)."""

import numpy as np
import pytest

from repro.cluster import (
    ShardedForecaster,
    compare_cluster_to_unsharded,
    replay_cluster,
)
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster

INPUT_LENGTH = 32
HORIZON = 8


@pytest.fixture
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service_factory(config):
    def factory():
        # Model construction is deterministic from config.seed, so every
        # shard is a true replica (identical weights).
        return ForecastService(LiPFormer(config), max_batch_size=16)
    return factory


@pytest.fixture
def cluster(service_factory):
    return ShardedForecaster(service_factory, n_shards=2)


def make_streams(rng, n_tenants, steps, channels=2):
    t = np.arange(steps, dtype=np.float32)
    streams = {}
    for i in range(n_tenants):
        seasonal = np.sin(2 * np.pi * (t / 24.0 + i / max(n_tenants, 1)))[:, None]
        noise = rng.normal(scale=0.3, size=(steps, channels))
        streams[f"tenant-{i}"] = ((i + 1) * seasonal + noise).astype(np.float32)
    return streams


class TestRouting:
    def test_ingest_lands_on_the_assigned_shard(self, cluster, rng):
        for i in range(8):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(5, 2)))
        for i in range(8):
            tenant = f"tenant-{i}"
            owner = cluster.shard_for(tenant)
            assert tenant in cluster.shard(owner).store
            for other in cluster.shard_ids():
                if other != owner:
                    assert tenant not in cluster.shard(other).store

    def test_forecast_matches_direct_model_predict(self, cluster, service_factory, rng):
        values = rng.normal(size=(40, 2)).astype(np.float32)
        cluster.ingest("a", values)
        reference = service_factory().model.predict(values[-INPUT_LENGTH:][None])[0]
        np.testing.assert_array_equal(cluster.forecast("a").result(), reference)

    def test_tenants_listed_across_shards(self, cluster, rng):
        for i in range(6):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(3, 2)))
        assert sorted(cluster.tenants()) == [f"tenant-{i}" for i in range(6)]
        assert cluster.tenant_count() == 6

    def test_drop_is_routed(self, cluster, rng):
        cluster.ingest("a", rng.normal(size=(4, 2)))
        cluster.drop("a")
        assert cluster.tenant_count() == 0

    def test_unknown_shard_raises(self, cluster):
        with pytest.raises(KeyError, match="unknown shard"):
            cluster.shard("nope")

    def test_replicas_must_share_geometry(self, service_factory, config):
        cluster = ShardedForecaster(service_factory, n_shards=1)
        other = ModelConfig(
            input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=3, patch_length=8,
            hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
        )
        with pytest.raises(ValueError, match="n_channels"):
            cluster.add_shard(service=ForecastService(LiPFormer(other)))

    def test_needs_at_least_one_shard(self, service_factory):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedForecaster(service_factory, n_shards=0)


class TestFanOut:
    def test_forecast_all_coalesces_per_shard(self, cluster, rng):
        for i in range(10):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(40, 2)))
        handles = cluster.forecast_all()
        assert len(handles) == 10
        assert all(h.done() for h in handles.values())
        merged = cluster.service_stats()
        # One flush per shard, not one pass per tenant.
        assert merged.requests == 10
        assert merged.forward_passes == len(cluster)
        assert merged.mean_batch_size == pytest.approx(10 / len(cluster))

    def test_ingest_and_forecast_tick(self, cluster, rng):
        arrivals = {f"tenant-{i}": rng.normal(size=(40, 2)).astype(np.float32) for i in range(4)}
        handles = cluster.ingest_and_forecast(arrivals)
        assert set(handles) == set(arrivals)
        assert all(h.result().shape == (HORIZON, 2) for h in handles.values())

    def test_stats_aggregate_cluster_wide(self, cluster, rng):
        for i in range(6):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(12, 2)))
        cluster.forecast_all()
        assert cluster.store_stats().tenants == 6
        assert cluster.store_stats().observations == 72
        assert cluster.streaming_stats().forecasts == 6
        payload = cluster.as_dict()
        assert payload["shards"] == 2
        assert payload["tenants"] == 6
        assert sum(payload["tenants_per_shard"].values()) == 6

    def test_reset_service_stats_between_phases(self, cluster, rng):
        cluster.ingest("a", rng.normal(size=(40, 2)))
        cluster.forecast_all()
        assert cluster.service_stats().requests > 0
        cluster.reset_service_stats()
        assert cluster.service_stats().requests == 0
        assert cluster.service_stats().forward_passes == 0


class TestRebalancing:
    def test_add_shard_migrates_exactly_the_reassigned_tenants(self, cluster, rng):
        tenants = [f"tenant-{i}" for i in range(30)]
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(10, 2)))
        before = cluster.ring.assignments(tenants)
        moved = cluster.add_shard("shard-2")
        after = cluster.ring.assignments(tenants)
        expected = {t for t in tenants if before[t] != after[t]}
        assert set(moved) == expected
        assert all(after[t] == "shard-2" for t in moved)
        # Routing table and physical placement agree after the move.
        for tenant in tenants:
            assert tenant in cluster.shard(after[tenant]).store
        assert cluster.tenants_migrated == len(moved)
        assert cluster.rebalances == 1

    def test_remove_shard_rehomes_only_its_tenants(self, cluster, rng):
        tenants = [f"tenant-{i}" for i in range(30)]
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(10, 2)))
        before = cluster.ring.assignments(tenants)
        victims = [t for t in tenants if before[t] == "shard-1"]
        moved = cluster.remove_shard("shard-1")
        assert set(moved) == set(victims)
        after = cluster.ring.assignments(tenants)
        for tenant in tenants:
            if tenant not in victims:
                assert after[tenant] == before[tenant]
            assert tenant in cluster.shard(after[tenant]).store

    def test_migration_carries_scaler_state(self, service_factory, rng):
        cluster = ShardedForecaster(service_factory, n_shards=2, normalization="rolling")
        tenants = [f"tenant-{i}" for i in range(12)]
        for i, tenant in enumerate(tenants):
            cluster.ingest(tenant, rng.normal(size=(40, 2)).astype(np.float32) * (i + 1) + 100.0)
        means = {t: cluster.shard(cluster.shard_for(t)).scaler(t).mean_ for t in tenants}
        moved = cluster.add_shard()
        assert moved, "expected at least one tenant to move"
        for tenant in moved:
            scaler = cluster.shard(cluster.shard_for(tenant)).scaler(tenant)
            np.testing.assert_array_equal(scaler.mean_, means[tenant])

    def test_migration_does_not_inflate_cluster_store_stats(self, cluster, rng):
        for i in range(20):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(10, 2)))
        before = cluster.store_stats()
        assert before.observations == 200 and before.tenants == 20
        moved = cluster.add_shard()
        assert moved
        after_grow = cluster.store_stats()
        assert after_grow.observations == 200, "migration must not re-count history"
        assert after_grow.tenants == 20
        cluster.remove_shard("shard-0")
        after_shrink = cluster.store_stats()
        assert after_shrink.observations == 200, "retired shard history must survive"
        assert after_shrink.ingests == after_grow.ingests

    def test_failed_add_shard_leaves_routing_intact(self, cluster, service_factory, rng):
        tenants = [f"tenant-{i}" for i in range(20)]
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(10, 2)))
        before = cluster.ring.assignments(tenants)
        # Crash the rebalance after two tenants migrated INTO the incoming
        # shard (imports back into existing shards — the rollback path —
        # keep working, as they would for a broken new replica).
        calls = {"n": 0}
        original_import = StreamingForecaster.import_tenant

        def explode(self, tenant, state):
            if self not in cluster._shards.values():
                if calls["n"] >= 2:
                    raise RuntimeError("mid-migration crash")
                calls["n"] += 1
            return original_import(self, tenant, state)

        StreamingForecaster.import_tenant = explode
        try:
            with pytest.raises(RuntimeError, match="mid-migration"):
                cluster.add_shard("shard-2")
        finally:
            StreamingForecaster.import_tenant = original_import
        # Topology rolled back: no phantom node, every tenant still served.
        assert "shard-2" not in cluster.ring
        assert cluster.ring.assignments(tenants) == before
        assert sorted(cluster.tenants()) == sorted(tenants)
        for tenant in tenants:
            assert cluster.forecast(tenant).result().shape == (HORIZON, 2)

    def test_concurrent_ingest_during_rebalance_loses_nothing(self, cluster, rng):
        """Live traffic during add/remove_shard: no KeyError, no lost rows."""
        import threading

        tenants = [f"tenant-{i}" for i in range(16)]
        counts = {}
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(5, 2)))
            counts[tenant] = 5
        errors = []
        stop = threading.Event()

        def traffic():
            local = np.random.default_rng(1)
            while not stop.is_set():
                for tenant in tenants:
                    try:
                        cluster.ingest(tenant, local.normal(size=(1, 2)).astype(np.float32))
                        counts[tenant] += 1
                    except Exception as error:  # noqa: BLE001 - recorded for the assert
                        errors.append(error)
                        return

        thread = threading.Thread(target=traffic)
        thread.start()
        try:
            for _ in range(3):
                cluster.add_shard()
            cluster.remove_shard(cluster.shard_ids()[-1])
        finally:
            stop.set()
            thread.join()
        assert not errors, f"routed traffic failed during rebalance: {errors[:1]}"
        for tenant in tenants:
            owner = cluster.shard(cluster.shard_for(tenant))
            assert owner.store.observed(tenant) == counts[tenant], (
                f"{tenant} lost rows during migration"
            )

    def test_restored_cluster_can_still_rebalance(self, service_factory, rng, tmp_path):
        """Restore must keep the saved store geometry or add_shard breaks."""
        cluster = ShardedForecaster(service_factory, n_shards=2, window_capacity=200)
        for i in range(12):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(10, 2)))
        path = str(tmp_path / "cluster.npz")
        cluster.save(path)
        revived = ShardedForecaster.load(service_factory, path)
        assert revived.window_capacity == 200
        moved = revived.add_shard()
        assert moved, "restored cluster must accept new shards"
        for tenant in moved:
            assert tenant in revived.shard(revived.shard_for(tenant)).store

    def test_cannot_remove_last_shard(self, service_factory, rng):
        cluster = ShardedForecaster(service_factory, n_shards=1)
        with pytest.raises(ValueError, match="last shard"):
            cluster.remove_shard("shard-0")

    def test_duplicate_shard_id_rejected(self, cluster):
        with pytest.raises(ValueError, match="already exists"):
            cluster.add_shard("shard-0")


class TestParity:
    """The PR's acceptance criterion, end to end."""

    def test_rebalanced_cluster_and_restored_forecaster_match_uninterrupted(
        self, service_factory, rng, tmp_path
    ):
        from repro.cluster import load_forecaster, save_forecaster

        streams = make_streams(rng, n_tenants=8, steps=56)
        rebalance_tick = 44
        snapshot_tick = 40
        path = str(tmp_path / "single.npz")

        # Reference: one uninterrupted, unsharded forecaster.
        reference = StreamingForecaster(service_factory())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)

        # Candidate 1: a 2-shard cluster rebalanced to 3 shards mid-stream.
        cluster = ShardedForecaster(service_factory, n_shards=2)
        moves = {}

        def rebalance(step):
            if step == rebalance_tick:
                before = cluster.ring.assignments(list(streams))
                moves["moved"] = cluster.add_shard("shard-2")
                moves["expected"] = [
                    t for t in streams if cluster.ring.assign(t) != before[t]
                ]

        sharded = replay_cluster(cluster, streams, warmup=INPUT_LENGTH, on_tick=rebalance)
        assert moves["moved"], "rebalance must move some tenants for a real test"
        assert set(moves["moved"]) == set(moves["expected"]), (
            "rebalance must move exactly the tenants whose ring assignment changed"
        )
        report = compare_cluster_to_unsharded(sharded, expected)
        assert report.bit_identical, f"max |Δ| = {report.max_abs_error}"
        assert report.windows_compared == 8 * (56 - INPUT_LENGTH + 1)

        # Candidate 2: a single forecaster snapshotted to disk mid-stream
        # and restored into a fresh process (new service replica).
        survivor = {"fc": StreamingForecaster(service_factory())}

        def restart(step):
            if step == snapshot_tick:
                save_forecaster(survivor["fc"], path)
                survivor["fc"] = load_forecaster(service_factory(), path)

        class Restartable:
            """Route through whichever incarnation is currently alive."""

            def ingest(self, tenant, values):
                return survivor["fc"].ingest(tenant, values)

            def forecast(self, tenant):
                return survivor["fc"].forecast(tenant)

            def flush(self):
                return survivor["fc"].flush()

        restored = replay_cluster(Restartable(), streams, warmup=INPUT_LENGTH, on_tick=restart)
        report = compare_cluster_to_unsharded(restored, expected)
        assert report.bit_identical, f"max |Δ| = {report.max_abs_error}"

    def test_shard_count_never_changes_forecasts(self, service_factory, rng):
        streams = make_streams(rng, n_tenants=6, steps=44)
        reference = StreamingForecaster(service_factory())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)
        for n_shards in (1, 3):
            cluster = ShardedForecaster(service_factory, n_shards=n_shards)
            produced = replay_cluster(cluster, streams, warmup=INPUT_LENGTH)
            report = compare_cluster_to_unsharded(produced, expected)
            assert report.bit_identical, (
                f"{n_shards} shards diverged: max |Δ| = {report.max_abs_error}"
            )

    def test_cluster_snapshot_restore_is_bit_identical(self, cluster, service_factory, rng, tmp_path):
        streams = make_streams(rng, n_tenants=5, steps=40)
        for tenant, values in streams.items():
            cluster.ingest(tenant, values)
        path = str(tmp_path / "cluster.npz")
        cluster.save(path)
        revived = ShardedForecaster.load(service_factory, path)
        assert revived.shard_ids() == cluster.shard_ids()
        assert sorted(revived.tenants()) == sorted(cluster.tenants())
        want = {t: h.result() for t, h in cluster.forecast_all().items()}
        got = {t: h.result() for t, h in revived.forecast_all().items()}
        for tenant in want:
            np.testing.assert_array_equal(got[tenant], want[tenant])

    def test_retired_shard_stats_survive_save_load(self, cluster, service_factory, rng, tmp_path):
        for i in range(10):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(40, 2)))
        cluster.forecast_all()
        cluster.remove_shard("shard-1")   # folds its history into retired stats
        want_service = cluster.service_stats()
        want_store = cluster.store_stats()
        path = str(tmp_path / "cluster.npz")
        cluster.save(path)
        revived = ShardedForecaster.load(service_factory, path)
        assert revived.service_stats() == want_service
        assert revived.store_stats() == want_store
        assert revived.streaming_stats() == cluster.streaming_stats()
        assert revived.rebalances == cluster.rebalances
        assert revived.tenants_migrated == cluster.tenants_migrated

    def test_parity_report_rejects_mismatched_tenants(self):
        with pytest.raises(ValueError, match="different tenants"):
            compare_cluster_to_unsharded({"a": np.zeros((1, 2, 2))}, {"b": np.zeros((1, 2, 2))})
