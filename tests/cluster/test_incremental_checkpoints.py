"""Tests for O(churn) incremental checkpoints and the manifest chain."""

import os

import numpy as np
import pytest

from repro.cluster import ShardedForecaster, read_snapshot, resolve_chain
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

INPUT_LENGTH = 32
HORIZON = 8


@pytest.fixture
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service_factory(config):
    def factory():
        return ForecastService(LiPFormer(config), max_batch_size=16)
    return factory


@pytest.fixture
def cluster(service_factory, rng):
    cluster = ShardedForecaster(service_factory, n_shards=2, normalization="rolling")
    for i in range(20):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(40, 2)).astype(np.float32) * (i + 1))
    return cluster


def forecast_map(target):
    return {t: h.result() for t, h in target.forecast_all().items()}


class TestDeltaContents:
    def test_delta_holds_only_churned_tenants(self, cluster, rng, tmp_path):
        cluster.save(str(tmp_path / "base"))
        churned = ["tenant-3", "tenant-11"]
        for tenant in churned:
            cluster.ingest(tenant, rng.normal(size=(2, 2)).astype(np.float32))
        cluster.save_incremental(str(tmp_path / "d1"))
        delta = read_snapshot(str(tmp_path / "d1"))
        assert delta["kind"] == "delta"
        dirty = [t for shard in delta["shards"].values() for t in shard["dirty"]]
        assert sorted(dirty) == sorted(churned)
        # ... while the order lists still cover the whole fleet (names are
        # the deletion record, so they must be complete).
        listed = [t for shard in delta["shards"].values() for t in shard["order"]]
        assert sorted(listed) == sorted(cluster.tenants())

    def test_delta_is_much_smaller_than_full_at_low_churn(self, cluster, rng, tmp_path):
        """Acceptance: 10% churn must checkpoint in <50% of full bytes."""
        base = str(tmp_path / "base.npz")
        cluster.save(base)
        for tenant in ["tenant-0", "tenant-1"]:   # 2 of 20 = 10% churn
            cluster.ingest(tenant, rng.normal(size=(2, 2)).astype(np.float32))
        delta = str(tmp_path / "d1.npz")
        cluster.save_incremental(delta)
        full, incremental = os.path.getsize(base), os.path.getsize(delta)
        assert incremental < 0.5 * full, (
            f"incremental checkpoint wrote {incremental} bytes vs {full} full"
        )

    def test_checkpoint_clears_dirty_tracking(self, cluster, rng, tmp_path):
        cluster.save(str(tmp_path / "base"))
        cluster.ingest("tenant-0", rng.normal(size=(1, 2)).astype(np.float32))
        cluster.save_incremental(str(tmp_path / "d1"))
        # Nothing churned since d1 → the next delta carries no payloads.
        cluster.save_incremental(str(tmp_path / "d2"))
        delta = read_snapshot(str(tmp_path / "d2"))
        assert all(not shard["dirty"] for shard in delta["shards"].values())

    def test_save_incremental_requires_a_base(self, cluster, tmp_path):
        with pytest.raises(RuntimeError, match="full"):
            cluster.save_incremental(str(tmp_path / "orphan"))

    def test_chained_paths_cannot_be_overwritten(self, cluster, rng, tmp_path):
        """Re-using a link's path ('latest.npz' habits) would destroy the
        only copy of that checkpoint — refuse, whatever the suffix."""
        base = str(tmp_path / "base")
        cluster.save(base)
        delta = str(tmp_path / "delta.npz")
        cluster.save_incremental(delta)
        for clash in (delta, str(tmp_path / "delta"), base, base + ".npz"):
            with pytest.raises(ValueError, match="fresh path"):
                cluster.save_incremental(clash)
        # The refused calls burned nothing: the chain still extends.
        cluster.save_incremental(str(tmp_path / "d2"))
        revived = ShardedForecaster.load_chain(
            cluster.service_factory, cluster.checkpoint_chain()
        )
        assert revived.tenants() == cluster.tenants()


class TestChainRestore:
    def test_chain_restore_is_bit_identical(self, cluster, service_factory, rng, tmp_path):
        """Full + deltas (with churn, a new tenant, a drop and a rebalance
        in between) must revive the exact live cluster."""
        paths = [str(tmp_path / "base")]
        cluster.save(paths[0])

        cluster.ingest("tenant-0", rng.normal(size=(3, 2)).astype(np.float32))
        cluster.ingest("fresh", rng.normal(size=(40, 2)).astype(np.float32))
        cluster.drop("tenant-7")
        paths.append(str(tmp_path / "d1"))
        cluster.save_incremental(paths[-1])

        assert cluster.add_shard(), "rebalance should move some tenants"
        cluster.ingest("tenant-1", rng.normal(size=(2, 2)).astype(np.float32))
        paths.append(str(tmp_path / "d2"))
        cluster.save_incremental(paths[-1])

        revived = ShardedForecaster.load_chain(service_factory, paths)
        assert revived.shard_ids() == cluster.shard_ids()
        # Placement, iteration order and stats all reproduce exactly.
        assert revived.tenants() == cluster.tenants()
        for tenant in cluster.tenants():
            assert revived.shard_for(tenant) == cluster.shard_for(tenant)
            assert tenant in revived.shard(revived.shard_for(tenant)).store
        assert revived.store_stats() == cluster.store_stats()
        assert revived.streaming_stats() == cluster.streaming_stats()
        assert "tenant-7" not in revived.tenants()
        want, got = forecast_map(cluster), forecast_map(revived)
        for tenant in want:
            np.testing.assert_array_equal(got[tenant], want[tenant])

    def test_restored_chain_keeps_extending(self, cluster, service_factory, rng, tmp_path):
        """load_chain → save_incremental → load_chain again stays exact."""
        paths = [str(tmp_path / "base")]
        cluster.save(paths[0])
        cluster.ingest("tenant-2", rng.normal(size=(2, 2)).astype(np.float32))
        paths.append(str(tmp_path / "d1"))
        cluster.save_incremental(paths[-1])

        revived = ShardedForecaster.load_chain(service_factory, paths)
        assert revived.checkpoint_chain() == paths
        arrival = rng.normal(size=(2, 2)).astype(np.float32)
        cluster.ingest("tenant-3", arrival)
        revived.ingest("tenant-3", arrival)
        extended = str(tmp_path / "d2")
        revived.save_incremental(extended)

        third = ShardedForecaster.load_chain(service_factory, paths + [extended])
        want, got = forecast_map(cluster), forecast_map(third)
        for tenant in want:
            np.testing.assert_array_equal(got[tenant], want[tenant])

    def test_load_after_plain_save_continues_the_chain(
        self, cluster, service_factory, rng, tmp_path
    ):
        base = str(tmp_path / "base")
        cluster.save(base)
        revived = ShardedForecaster.load(service_factory, base)
        assert revived.checkpoint_chain() == [base]
        revived.ingest("tenant-0", rng.normal(size=(1, 2)).astype(np.float32))
        revived.save_incremental(str(tmp_path / "d1"))   # must not raise

    def test_resolve_chain_of_base_only_matches_full_state(self, cluster, tmp_path):
        base = str(tmp_path / "base")
        cluster.save(base)
        state = resolve_chain([base])
        assert sorted(state["shards"]) == sorted(cluster.shard_ids())


class TestChainValidation:
    def make_chain(self, cluster, rng, tmp_path, deltas=2):
        paths = [str(tmp_path / "base")]
        cluster.save(paths[0])
        for index in range(deltas):
            cluster.ingest("tenant-0", rng.normal(size=(1, 2)).astype(np.float32))
            paths.append(str(tmp_path / f"d{index + 1}"))
            cluster.save_incremental(paths[-1])
        return paths

    def test_missing_link_is_rejected(self, cluster, rng, tmp_path):
        base, d1, d2 = self.make_chain(cluster, rng, tmp_path)
        with pytest.raises(ValueError, match="out of order|missing a link"):
            resolve_chain([base, d2])

    def test_reordered_links_are_rejected(self, cluster, rng, tmp_path):
        base, d1, d2 = self.make_chain(cluster, rng, tmp_path)
        with pytest.raises(ValueError, match="out of order|missing a link"):
            resolve_chain([base, d2, d1])

    def test_foreign_delta_is_rejected(self, cluster, service_factory, rng, tmp_path):
        base, d1, _ = self.make_chain(cluster, rng, tmp_path)
        other = ShardedForecaster(service_factory, n_shards=2, normalization="rolling")
        other.ingest("tenant-0", rng.normal(size=(40, 2)).astype(np.float32))
        other.save(str(tmp_path / "other-base"))
        other.ingest("tenant-0", rng.normal(size=(1, 2)).astype(np.float32))
        other.save_incremental(str(tmp_path / "other-d1"))
        with pytest.raises(ValueError, match="chain"):
            resolve_chain([base, str(tmp_path / "other-d1")])

    def test_delta_cannot_be_a_base(self, cluster, rng, tmp_path):
        _, d1, _ = self.make_chain(cluster, rng, tmp_path)
        with pytest.raises(ValueError, match="first link"):
            resolve_chain([d1])

    def test_full_snapshot_cannot_be_a_link(self, cluster, rng, tmp_path):
        base, _, _ = self.make_chain(cluster, rng, tmp_path)
        with pytest.raises(ValueError, match="not a delta"):
            resolve_chain([base, base])

    def test_empty_chain_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            resolve_chain([])

    def test_new_full_save_starts_a_new_chain(self, cluster, rng, tmp_path):
        """Deltas from the old chain must not graft onto a new base."""
        base, d1, _ = self.make_chain(cluster, rng, tmp_path)
        rebase = str(tmp_path / "rebase")
        cluster.save(rebase)
        with pytest.raises(ValueError, match="chain"):
            resolve_chain([rebase, d1])
