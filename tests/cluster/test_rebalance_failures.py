"""Mid-migration failures during rebalancing must stay observable.

The broad ``except Exception`` handlers in ``add_shard``/``remove_shard``
exist to unwind a half-done migration — not to swallow the error.  These
tests pin the contract: the original exception propagates unchanged, the
topology and every tenant's placement roll back, and the failure is
counted on ``rebalance_failures`` (and surfaces through ``as_dict``).
"""

import numpy as np
import pytest

from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

INPUT_LENGTH = 32
HORIZON = 8


@pytest.fixture
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def cluster(config):
    return ShardedForecaster(
        lambda: ForecastService(LiPFormer(config), max_batch_size=16), n_shards=2
    )


def populate(cluster, rng, n_tenants=16):
    for i in range(n_tenants):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(6, 2)).astype(np.float32))
    return [f"tenant-{i}" for i in range(n_tenants)]


def tenants_that_would_move(cluster, new_shard_id):
    """Simulate the ring growth to find the migration set (deterministic)."""
    cluster.ring.add(new_shard_id)
    try:
        return [t for t in cluster.tenants() if cluster.ring.assign(t) == new_shard_id]
    finally:
        cluster.ring.remove(new_shard_id)


def arm_export_failure(cluster, trip):
    """Make every existing shard's ``export_tenant`` raise while armed."""
    for shard_id in cluster.shard_ids():
        shard = cluster.shard(shard_id)

        def failing_export(tenant, _orig=shard.export_tenant):
            if trip["armed"]:
                raise RuntimeError("injected migration failure")
            return _orig(tenant)

        shard.export_tenant = failing_export


class TestAddShardFailure:
    def test_failure_propagates_and_is_counted(self, cluster, rng):
        tenants = populate(cluster, rng)
        assert tenants_that_would_move(cluster, "shard-2"), (
            "fixture must place at least one tenant on the incoming shard"
        )
        before = {t: cluster.shard_for(t) for t in tenants}
        trip = {"armed": True}
        arm_export_failure(cluster, trip)

        with pytest.raises(RuntimeError, match="injected migration failure"):
            cluster.add_shard("shard-2")

        # Observable, not swallowed:
        assert cluster.rebalance_failures == 1
        assert cluster.as_dict()["rebalance_failures"] == 1
        assert cluster.rebalances == 0

        # Fully rolled back: no phantom shard, no tenant moved or lost.
        assert sorted(cluster.shard_ids()) == ["shard-0", "shard-1"]
        assert cluster.tenant_count() == len(tenants)
        for tenant in tenants:
            assert cluster.shard_for(tenant) == before[tenant]
            assert tenant in cluster.shard(before[tenant]).store

    def test_cluster_recovers_after_failed_rebalance(self, cluster, rng):
        tenants = populate(cluster, rng)
        trip = {"armed": True}
        arm_export_failure(cluster, trip)
        with pytest.raises(RuntimeError):
            cluster.add_shard("shard-2")
        trip["armed"] = False

        moved = cluster.add_shard("shard-2")
        assert sorted(cluster.shard_ids()) == ["shard-0", "shard-1", "shard-2"]
        assert cluster.tenant_count() == len(tenants)
        assert cluster.rebalances == 1
        assert cluster.rebalance_failures == 1
        for tenant in moved:
            assert cluster.shard_for(tenant) == "shard-2"


class TestRemoveShardFailure:
    def test_failure_restores_the_departing_shard(self, cluster, rng):
        tenants = populate(cluster, rng)
        victim = cluster.shard_for(tenants[0])
        before = {t: cluster.shard_for(t) for t in tenants}

        # Every surviving shard refuses the incoming tenants.
        for shard_id in cluster.shard_ids():
            if shard_id == victim:
                continue
            shard = cluster.shard(shard_id)

            def failing_import(tenant, state):
                raise RuntimeError("injected import failure")

            shard.import_tenant = failing_import

        with pytest.raises(RuntimeError, match="injected import failure"):
            cluster.remove_shard(victim)

        assert cluster.rebalance_failures == 1
        assert cluster.as_dict()["rebalance_failures"] == 1
        assert cluster.rebalances == 0
        assert victim in cluster.shard_ids()
        assert cluster.tenant_count() == len(tenants)
        for tenant in tenants:
            assert cluster.shard_for(tenant) == before[tenant]
            assert tenant in cluster.shard(before[tenant]).store
        # The restored shard keeps its named lock (still routable).
        assert victim in cluster._shard_locks
