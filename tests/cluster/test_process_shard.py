"""Tests for the process-backed cluster (:mod:`repro.cluster.process`).

Workers are real OS processes, so the suite leans on a shared
module-scoped cluster where it can (spawn + replica build is the
expensive part) and spawns fresh clusters only where the test mutates
topology or persistence state.
"""

import os

import numpy as np
import pytest

import repro.obs as obs
from repro.cluster import (
    ProcessCoordinator,
    ServiceSpec,
    ShardedForecaster,
    WorkerDied,
    build_cluster,
    compare_cluster_to_unsharded,
    replay_cluster,
)
from repro.config import ModelConfig
from repro.streaming import StreamingForecaster

INPUT_LENGTH = 16
HORIZON = 4
CHANNELS = 2


@pytest.fixture(scope="module")
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=CHANNELS,
        patch_length=4, hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=11,
    )


@pytest.fixture(scope="module")
def spec(config):
    return ServiceSpec(config=config, max_batch_size=16)


def make_streams(n_tenants, rows, seed=0):
    rng = np.random.default_rng(seed)
    return {
        f"tenant-{i}": rng.normal(size=(rows, CHANNELS)).astype(np.float32)
        for i in range(n_tenants)
    }


@pytest.fixture(scope="module")
def cluster(spec):
    with ProcessCoordinator(spec, n_shards=2) as cluster:
        for tenant, values in make_streams(6, INPUT_LENGTH + 4).items():
            cluster.ingest(tenant, values)
        yield cluster


class TestServiceSpec:
    def test_replicas_are_bit_identical(self, spec):
        a, b = spec.build(), spec.build()
        window = np.random.default_rng(3).normal(size=(INPUT_LENGTH, CHANNELS)).astype(np.float32)
        first, second = a.submit(window), b.submit(window)
        a.flush()
        b.flush()
        np.testing.assert_array_equal(first.result(), second.result())

    def test_state_round_trip(self, spec):
        revived = ServiceSpec.from_state(spec.to_state())
        assert revived == spec

    def test_spec_is_a_service_factory(self, spec):
        # The thread backend takes any zero-arg callable; a spec qualifies.
        cluster = ShardedForecaster(spec, n_shards=2)
        assert len(cluster) == 2

    def test_coordinator_rejects_closures(self, config):
        from repro.core import LiPFormer
        from repro.serving import ForecastService

        with pytest.raises(TypeError, match="ServiceSpec"):
            ProcessCoordinator(lambda: ForecastService(LiPFormer(config)), n_shards=1)


class TestRoutedTraffic:
    def test_ingest_returns_totals(self, cluster):
        total = cluster.ingest("tenant-0", np.zeros((2, CHANNELS), dtype=np.float32))
        assert total >= INPUT_LENGTH + 4 + 2

    def test_forecast_all_shapes(self, cluster):
        handles = cluster.forecast_all()
        assert sorted(handles) == sorted(f"tenant-{i}" for i in range(6))
        for handle in handles.values():
            assert handle.result().shape == (HORIZON, CHANNELS)

    def test_single_forecast_resolves_via_flush(self, cluster):
        handle = cluster.forecast("tenant-1")
        assert not handle.done()
        result = handle.result()  # triggers the owning shard's flush
        assert handle.done()
        assert result.shape == (HORIZON, CHANNELS)

    def test_unknown_tenant_keeps_thread_backend_error_type(self, cluster):
        handle = cluster.forecast("tenant-1")
        with pytest.raises(KeyError):
            cluster.forecast_all(["never-ingested"])
        handle.result()  # pending work on healthy shards still settles

    def test_routing_is_ring_stable(self, cluster, spec):
        thread = ShardedForecaster(spec, n_shards=2)
        for tenant in (f"tenant-{i}" for i in range(6)):
            assert cluster.shard_for(tenant) == thread.shard_for(tenant)

    def test_drop_forgets_tenant(self, spec):
        with ProcessCoordinator(spec, n_shards=2, warmup=False) as cluster:
            for tenant, values in make_streams(3, INPUT_LENGTH).items():
                cluster.ingest(tenant, values)
            cluster.drop("tenant-1")
            assert sorted(cluster.tenants()) == ["tenant-0", "tenant-2"]
            assert cluster.tenant_count() == 2


class TestParity:
    def test_process_cluster_matches_unsharded_replay(self, spec):
        streams = make_streams(5, INPUT_LENGTH + 6, seed=42)
        reference = StreamingForecaster(spec.build())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)
        with ProcessCoordinator(spec, n_shards=3) as cluster:
            produced = replay_cluster(cluster, streams, warmup=INPUT_LENGTH)
        report = compare_cluster_to_unsharded(produced, expected)
        assert report.bit_identical, report

    def test_process_matches_thread_backend(self, spec):
        streams = make_streams(4, INPUT_LENGTH + 4, seed=7)
        thread = build_cluster(spec, n_shards=2, backend="thread")
        for tenant, values in streams.items():
            thread.ingest(tenant, values)
        expected = {t: h.result() for t, h in thread.forecast_all().items()}
        with build_cluster(spec, n_shards=2, backend="process") as process:
            for tenant, values in streams.items():
                process.ingest(tenant, values)
            produced = {t: h.result() for t, h in process.forecast_all().items()}
        for tenant in streams:
            np.testing.assert_array_equal(produced[tenant], expected[tenant])


class TestBuildCluster:
    def test_backend_selection(self, spec):
        thread = build_cluster(spec, n_shards=2, backend="thread")
        assert isinstance(thread, ShardedForecaster)
        with pytest.raises(ValueError, match="unknown backend"):
            build_cluster(spec, backend="fibers")

    def test_process_backend_rejects_executor(self, spec):
        from repro.runtime import SerialExecutor

        with pytest.raises(ValueError, match="executor"):
            build_cluster(spec, backend="process", executor=SerialExecutor())


class TestTopology:
    def test_add_and_remove_shard_preserve_data(self, spec):
        streams = make_streams(6, INPUT_LENGTH + 2, seed=5)
        with ProcessCoordinator(spec, n_shards=2) as cluster:
            for tenant, values in streams.items():
                cluster.ingest(tenant, values)
            before = {t: h.result() for t, h in cluster.forecast_all().items()}
            moved_in = cluster.add_shard()
            assert len(cluster) == 3
            assert all(cluster.shard_for(t) == "shard-2" for t in moved_in)
            moved_out = cluster.remove_shard("shard-2")
            assert sorted(moved_out) == sorted(moved_in)
            after = {t: h.result() for t, h in cluster.forecast_all().items()}
            for tenant in streams:
                np.testing.assert_array_equal(after[tenant], before[tenant])
            assert cluster.rebalances == 2
            assert cluster.tenants_migrated == len(moved_in) * 2

    def test_cannot_remove_last_shard(self, spec):
        with ProcessCoordinator(spec, n_shards=1, warmup=False) as cluster:
            with pytest.raises(ValueError, match="last shard"):
                cluster.remove_shard("shard-0")


class TestObservability:
    def test_stats_merge_across_workers(self, cluster):
        cluster.forecast_all()
        stats = cluster.service_stats()
        assert stats.requests > 0
        assert stats.flushes > 0
        streaming = cluster.streaming_stats()
        assert streaming.forecasts > 0
        store = cluster.store_stats()
        assert store.observations > 0

    def test_registry_views_are_cache_backed(self, cluster):
        cluster.service_stats()  # refresh the cache
        views = obs.default_registry().snapshot()["views"]
        assert views.get("repro_serving_requests", 0) > 0

    def test_worker_metrics_by_shard(self, cluster):
        metrics = cluster.worker_metrics()
        assert sorted(metrics) == cluster.shard_ids()
        for snapshot in metrics.values():
            assert "metrics" in snapshot and "views" in snapshot

    def test_as_dict_reports_backend(self, cluster):
        payload = cluster.as_dict()
        assert payload["backend"] == "process"
        assert payload["shards"] == 2
        assert sum(payload["tenants_per_shard"].values()) == payload["tenants"]

    def test_spans_graft_across_the_boundary(self, spec):
        with obs.observability(tracing=True):
            obs.default_recorder().clear()
            with ProcessCoordinator(spec, n_shards=2, warmup=False) as cluster:
                for tenant, values in make_streams(3, INPUT_LENGTH).items():
                    cluster.ingest(tenant, values)
                {t: h.result() for t, h in cluster.forecast_all().items()}
            spans = obs.default_recorder().spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        fan_out = by_name["cluster.forecast_all"]
        workers = by_name["worker.forecast_many"]
        assert workers, "worker spans must cross the process boundary"
        fan_out_ids = {span.span_id for span in fan_out}
        assert all(w.parent_id in fan_out_ids for w in workers)
        # Worker-internal children keep their (remapped) links.
        worker_ids = {w.span_id for w in workers}
        assert any(s.parent_id in worker_ids for s in by_name.get("service.flush", []))


class TestPersistence:
    def test_save_load_round_trip(self, spec, tmp_path):
        streams = make_streams(4, INPUT_LENGTH + 2, seed=9)
        with ProcessCoordinator(spec, n_shards=2) as cluster:
            for tenant, values in streams.items():
                cluster.ingest(tenant, values)
            expected = {t: h.result() for t, h in cluster.forecast_all().items()}
            cluster.save(str(tmp_path / "full"))
        with ProcessCoordinator.load(spec, str(tmp_path / "full")) as revived:
            produced = {t: h.result() for t, h in revived.forecast_all().items()}
        for tenant in streams:
            np.testing.assert_array_equal(produced[tenant], expected[tenant])

    def test_chain_round_trip_and_cross_backend(self, spec, tmp_path):
        streams = make_streams(4, INPUT_LENGTH + 2, seed=13)
        rng = np.random.default_rng(99)
        with ProcessCoordinator(spec, n_shards=2) as cluster:
            for tenant, values in streams.items():
                cluster.ingest(tenant, values)
            cluster.save(str(tmp_path / "base"))
            cluster.ingest("tenant-0", rng.normal(size=(2, CHANNELS)).astype(np.float32))
            cluster.save_incremental(str(tmp_path / "delta-1"))
            chain = cluster.checkpoint_chain()
            expected = {t: h.result() for t, h in cluster.forecast_all().items()}
        # Process chain restores in a fresh process cluster...
        with ProcessCoordinator.load_chain(spec, chain) as revived:
            produced = {t: h.result() for t, h in revived.forecast_all().items()}
        for tenant in streams:
            np.testing.assert_array_equal(produced[tenant], expected[tenant])
        # ...and in a thread cluster: one snapshot format, two deployments.
        thread = ShardedForecaster.load_chain(spec, chain)
        crossed = {t: h.result() for t, h in thread.forecast_all().items()}
        for tenant in streams:
            np.testing.assert_array_equal(crossed[tenant], expected[tenant])

    def test_thread_snapshot_restores_as_process_cluster(self, spec, tmp_path):
        streams = make_streams(4, INPUT_LENGTH + 2, seed=17)
        thread = ShardedForecaster(spec, n_shards=2)
        for tenant, values in streams.items():
            thread.ingest(tenant, values)
        expected = {t: h.result() for t, h in thread.forecast_all().items()}
        thread.save(str(tmp_path / "thread-full"))
        with ProcessCoordinator.load(spec, str(tmp_path / "thread-full")) as revived:
            produced = {t: h.result() for t, h in revived.forecast_all().items()}
        for tenant in streams:
            np.testing.assert_array_equal(produced[tenant], expected[tenant])

    def test_incremental_requires_base(self, spec, tmp_path):
        with ProcessCoordinator(spec, n_shards=1, warmup=False) as cluster:
            with pytest.raises(RuntimeError, match="call save"):
                cluster.save_incremental(str(tmp_path / "orphan"))


class TestWorkerLifecycle:
    def test_detect_failures_empty_when_healthy(self, cluster):
        assert cluster.detect_failures(timeout=5.0) == []

    def test_close_is_idempotent_and_reaps(self, spec):
        cluster = ProcessCoordinator(spec, n_shards=2, warmup=False)
        pids = [cluster.worker_pid(s) for s in cluster.shard_ids()]
        cluster.close()
        cluster.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_dead_shard_raises_worker_died(self, spec):
        with ProcessCoordinator(spec, n_shards=2, warmup=False) as cluster:
            cluster.ingest("t", np.zeros((4, CHANNELS), dtype=np.float32))
            victim = cluster.shard_for("t")
            cluster.kill_worker(victim)
            with pytest.raises(WorkerDied) as info:
                cluster.ingest("t", np.zeros((1, CHANNELS), dtype=np.float32))
            assert info.value.shard_id == victim
