"""Concurrency tests for the parallel cluster: many threads, one truth.

The reader/writer refactor's whole claim is that routed traffic on
different shards can proceed concurrently *without* weakening any of PR
3's guarantees: no lost updates, no deadlocks, exact cluster-wide stats,
and forecasts bit-identical to an unsharded single-threaded reference.
These tests hammer the cluster from many threads (with rebalances
mid-stream) and then audit the books.
"""

import threading

import numpy as np
import pytest

from repro.cluster import ShardedForecaster, compare_cluster_to_unsharded, replay_cluster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.runtime import PoolExecutor, lock_ordering
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster

INPUT_LENGTH = 16
HORIZON = 4


@pytest.fixture(autouse=True)
def _lock_order_watchdog():
    """Run every stress test under the lock-order detector.

    Any thread that acquires the topology and shard locks in an order
    inconsistent with the rest of the suite turns a would-be flaky hang
    into a deterministic :class:`PotentialDeadlock` failure.
    """
    with lock_ordering():
        yield


@pytest.fixture
def config():
    return ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=4,
        hidden_dim=8, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service_factory(config):
    def factory():
        return ForecastService(LiPFormer(config), max_batch_size=8)
    return factory


class TestStress:
    def test_threads_across_shards_with_midstream_rebalance(self, service_factory):
        """Ingest + forecast from many threads while the topology changes.

        Each worker owns a disjoint set of tenants, so the expected counts
        are exact.  Mid-stream the main thread grows and shrinks the ring
        and runs cluster-wide fan-outs.  Afterwards every ledger must
        balance: per-tenant row counts, store totals, streaming forecast
        counts and service request counts — nothing lost, nothing double-
        counted, and (implicitly) no deadlock because the test finishes.
        """
        n_threads, tenants_per_thread, iterations = 6, 3, 24
        cluster = ShardedForecaster(service_factory, n_shards=3, executor=PoolExecutor(3))
        owned = {
            worker: [f"w{worker}-t{j}" for j in range(tenants_per_thread)]
            for worker in range(n_threads)
        }
        ingested = {t: 0 for ts in owned.values() for t in ts}
        forecasts_by_thread = [0] * n_threads
        errors = []
        start = threading.Barrier(n_threads + 1, timeout=30)

        def worker(index: int) -> None:
            rng = np.random.default_rng(index)
            try:
                start.wait()
                for step in range(iterations):
                    for tenant in owned[index]:
                        cluster.ingest(tenant, rng.normal(size=(1, 1)).astype(np.float32))
                        ingested[tenant] += 1
                    if step % 4 == 3:
                        tenant = owned[index][step % tenants_per_thread]
                        value = cluster.forecast(tenant).result()
                        forecasts_by_thread[index] += 1
                        assert value.shape == (HORIZON, 1)
            except Exception as error:  # noqa: BLE001 - surfaced by the assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        start.wait()
        fan_out_requests = 0
        for round_index in range(3):
            cluster.add_shard()
            handles = cluster.forecast_all()
            fan_out_requests += len(handles)
            for handle in handles.values():
                assert handle.result().shape == (HORIZON, 1)
            cluster.remove_shard(cluster.shard_ids()[-1])
        for thread in threads:
            thread.join(60)
            assert not thread.is_alive(), "worker deadlocked"
        cluster.flush()

        assert not errors, f"concurrent traffic failed: {errors[:1]}"
        # No lost updates: every tenant's row count matches what was sent.
        for tenant, count in ingested.items():
            owner = cluster.shard(cluster.shard_for(tenant))
            assert owner.store.observed(tenant) == count, f"{tenant} lost rows"
        store = cluster.store_stats()
        assert store.observations == sum(ingested.values())
        assert store.tenants == len(ingested)
        # Exact service accounting: one request per submitted forecast.
        submitted = sum(forecasts_by_thread) + fan_out_requests
        assert cluster.service_stats().requests == submitted
        assert cluster.streaming_stats().forecasts == submitted

    def test_concurrent_fan_outs_never_tear_stats(self, service_factory):
        """Parallel forecast_all calls from several threads stay exact."""
        cluster = ShardedForecaster(service_factory, n_shards=2, executor=PoolExecutor(2))
        rng = np.random.default_rng(7)
        tenants = [f"tenant-{i}" for i in range(12)]
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32))
        rounds_per_thread, n_threads = 5, 4
        errors = []

        def fan_out():
            try:
                for _ in range(rounds_per_thread):
                    for handle in cluster.forecast_all().values():
                        handle.result()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=fan_out) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
            assert not thread.is_alive(), "fan-out deadlocked"
        assert not errors, f"fan-out failed: {errors[:1]}"
        expected = len(tenants) * rounds_per_thread * n_threads
        stats = cluster.service_stats()
        assert stats.requests == expected
        assert cluster.streaming_stats().forecasts == expected


class TestDropRace:
    def test_forecast_all_tolerates_concurrent_drops(self, service_factory, rng):
        """A tenant dropped between enumeration and its shard's fan-out must
        vanish from the result, not KeyError the whole fan-out."""
        cluster = ShardedForecaster(service_factory, n_shards=2, executor=PoolExecutor(2))
        stable = [f"stable-{i}" for i in range(6)]
        churny = [f"churny-{i}" for i in range(6)]
        for tenant in stable + churny:
            cluster.ingest(tenant, rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32))
        errors = []
        stop = threading.Event()

        def churn():
            local = np.random.default_rng(3)
            try:
                while not stop.is_set():
                    for tenant in churny:
                        cluster.drop(tenant)
                        cluster.ingest(
                            tenant, local.normal(size=(1, 1)).astype(np.float32)
                        )
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(30):
                handles = cluster.forecast_all()
                # Stable tenants are always served; churny ones may skip a
                # round mid-drop but must never poison the fan-out.
                assert set(stable) <= set(handles)
                for handle in handles.values():
                    assert handle.result().shape == (HORIZON, 1)
        finally:
            stop.set()
            thread.join(30)
            assert not thread.is_alive()
        assert not errors, f"churn thread failed: {errors[:1]}"

    def test_explicit_tenant_list_still_errors_on_unknown(self, service_factory, rng):
        cluster = ShardedForecaster(service_factory, n_shards=2)
        cluster.ingest("known", rng.normal(size=(4, 1)).astype(np.float32))
        with pytest.raises(KeyError, match="unknown tenant"):
            cluster.forecast_all(tenants=["known", "ghost"])


class TestAssignmentCache:
    def test_ring_lookup_cache_tracks_the_live_population(self, service_factory, rng):
        """drop() must evict the memoised lookup — under tenant churn the
        cache cannot grow with every key ever seen."""
        cluster = ShardedForecaster(service_factory, n_shards=2)
        for i in range(50):
            tenant = f"ephemeral-{i}"
            cluster.ingest(tenant, rng.normal(size=(1, 1)).astype(np.float32))
            cluster.drop(tenant)
        assert len(cluster._assign_cache) == 0
        cluster.ingest("kept", rng.normal(size=(1, 1)).astype(np.float32))
        assert set(cluster._assign_cache) == {"kept"}

    def test_cache_invalidated_by_topology_changes(self, service_factory, rng):
        cluster = ShardedForecaster(service_factory, n_shards=2)
        tenants = [f"tenant-{i}" for i in range(30)]
        for tenant in tenants:
            cluster.ingest(tenant, rng.normal(size=(1, 1)).astype(np.float32))
        cluster.add_shard()
        # Fresh lookups after the rebalance agree with the ring everywhere.
        for tenant in tenants:
            assert cluster.shard_for(tenant) == cluster.ring.assign(tenant)
            assert tenant in cluster.shard(cluster.shard_for(tenant)).store


class TestPoolParity:
    def test_pool_executor_keeps_bit_identical_parity(self, service_factory, rng):
        """Acceptance: parallel fan-out must not change a single bit.

        The same per-tenant streams replayed through an unsharded
        forecaster and through a 3-shard cluster running its fan-outs on a
        thread pool must produce identical forecasts — parallelism is a
        scheduling decision, never a numerical one.
        """
        steps = INPUT_LENGTH + 12
        t = np.arange(steps, dtype=np.float32)
        streams = {
            f"tenant-{i}": (
                np.sin(2 * np.pi * (t / 12.0 + i / 7.0))[:, None]
                + rng.normal(scale=0.2, size=(steps, 1))
            ).astype(np.float32)
            for i in range(7)
        }
        reference = StreamingForecaster(service_factory())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)
        with PoolExecutor(4) as pool:
            cluster = ShardedForecaster(service_factory, n_shards=3, executor=pool)
            produced = replay_cluster(cluster, streams, warmup=INPUT_LENGTH)
        report = compare_cluster_to_unsharded(produced, expected)
        assert report.bit_identical, f"max |Δ| = {report.max_abs_error}"
        assert report.windows_compared == 7 * 13
