"""Tests for the pickle-free nested-state ↔ .npz snapshot codec."""

import os

import numpy as np
import pytest

from repro.cluster import (
    decode_state,
    encode_state,
    load_forecaster,
    read_snapshot,
    save_forecaster,
    write_snapshot,
)
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster


@pytest.fixture
def config():
    return ModelConfig(
        input_length=32, horizon=8, n_channels=2, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


@pytest.fixture
def service_factory(config):
    def factory():
        return ForecastService(LiPFormer(config), max_batch_size=8)
    return factory


def roundtrip(state):
    manifest, arrays = encode_state(state)
    return decode_state(manifest, arrays)


class TestCodec:
    def test_scalars_strings_none_roundtrip(self):
        state = {"a": 1, "b": 2.5, "c": "text", "d": None, "e": True, "f": False}
        assert roundtrip(state) == state

    def test_nested_structure_roundtrips(self):
        state = {"outer": {"inner": [1, {"deep": None}, "s"]}, "empty": {}, "list": []}
        assert roundtrip(state) == state

    def test_arrays_keep_dtype_and_values(self):
        state = {
            "f32": np.arange(6, dtype=np.float32).reshape(2, 3),
            "f64": np.linspace(0, 1, 5),
            "i64": np.array([1, 2, 3], dtype=np.int64),
        }
        out = roundtrip(state)
        for key, value in state.items():
            assert out[key].dtype == value.dtype
            np.testing.assert_array_equal(out[key], value)

    def test_datetime64_timestamp_roundtrips(self):
        stamp = np.datetime64("2025-06-01T12:34:56")
        out = roundtrip({"last": stamp})
        assert out["last"] == stamp
        assert out["last"].dtype == stamp.dtype

    def test_stdlib_datetime_watermarks_roundtrip(self):
        import datetime

        stamps = {
            "dt": datetime.datetime(2026, 7, 26, 12, 30, 15, 250000),
            "date": datetime.date(2026, 7, 26),
        }
        out = roundtrip(stamps)
        assert out == stamps
        assert type(out["dt"]) is datetime.datetime
        assert type(out["date"]) is datetime.date

    def test_stdlib_datetime_watermark_survives_save(self, service_factory, rng, tmp_path):
        """Ingest accepts datetime watermarks, so persistence must too."""
        import datetime

        path = str(tmp_path / "forecaster.npz")
        original = StreamingForecaster(service_factory())
        stamp = datetime.datetime(2026, 7, 26, 9, 0)
        original.ingest("a", rng.normal(size=(1, 2)), timestamp=stamp)
        save_forecaster(original, path)
        restored = load_forecaster(service_factory(), path)
        assert restored.store.last_timestamp("a") == stamp

    def test_tenant_keys_with_slashes_and_unicode(self):
        state = {"org/team/tenant": {"a/b": np.ones(2)}, "Ω-tenant": 1}
        out = roundtrip(state)
        assert set(out) == set(state)
        np.testing.assert_array_equal(out["org/team/tenant"]["a/b"], np.ones(2))

    def test_object_values_are_rejected_not_pickled(self):
        with pytest.raises(TypeError, match="pickling"):
            encode_state({"bad": np.array([object()])})
        with pytest.raises(TypeError, match="cannot snapshot"):
            encode_state({"bad": lambda: None})
        with pytest.raises(TypeError, match="keys must be strings"):
            encode_state({1: "x"})

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.npz")
        state = {
            "tenants": ["a", "b"],
            "buffers": {"a": np.full((3, 2), 7.0, dtype=np.float32)},
            "watermark": np.datetime64("2025-01-01"),
            "mode": "rolling",
        }
        write_snapshot(state, path)
        out = read_snapshot(path)
        assert out["tenants"] == ["a", "b"]
        assert out["mode"] == "rolling"
        assert out["watermark"] == state["watermark"]
        np.testing.assert_array_equal(out["buffers"]["a"], state["buffers"]["a"])

    def test_non_snapshot_archive_is_rejected(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        np.savez(path, w=np.ones(3))
        with pytest.raises(ValueError, match="manifest"):
            read_snapshot(path)

    def test_unknown_version_is_rejected(self):
        manifest, arrays = encode_state({"a": 1})
        manifest["version"] = 99
        with pytest.raises(ValueError, match="version"):
            decode_state(manifest, arrays)


class TestForecasterPersistence:
    def test_restored_process_forecasts_bit_identically(self, service_factory, rng, tmp_path):
        path = str(tmp_path / "forecaster.npz")
        original = StreamingForecaster(service_factory(), normalization="rolling")
        for i in range(5):
            original.ingest(f"tenant-{i}", rng.normal(size=(40 + i, 2)).astype(np.float32) * (i + 1))
        save_forecaster(original, path)

        restored = load_forecaster(service_factory(), path)
        assert restored.store.tenants() == original.store.tenants()
        assert restored.normalization == "rolling"
        assert restored.store.stats == original.store.stats
        assert restored.stats == original.stats

        # Same follow-up traffic into both processes → identical forecasts.
        for i in range(5):
            arrival = rng.normal(size=(3, 2)).astype(np.float32)
            original.ingest(f"tenant-{i}", arrival)
            restored.ingest(f"tenant-{i}", arrival)
        want = {t: h.result() for t, h in original.forecast_all().items()}
        got = {t: h.result() for t, h in restored.forecast_all().items()}
        for tenant in want:
            np.testing.assert_array_equal(got[tenant], want[tenant])

    def test_timestamp_watermarks_survive_restart(self, service_factory, rng, tmp_path):
        path = str(tmp_path / "forecaster.npz")
        original = StreamingForecaster(service_factory())
        original.ingest("a", rng.normal(size=(1, 2)), timestamp=np.datetime64("2025-01-01"))
        save_forecaster(original, path)
        restored = load_forecaster(service_factory(), path)
        assert restored.store.last_timestamp("a") == np.datetime64("2025-01-01")
        with pytest.raises(ValueError, match="not after"):
            restored.ingest("a", rng.normal(size=(1, 2)), timestamp=np.datetime64("2024-12-31"))

    def test_restore_validates_channel_geometry(self, service_factory, config, rng, tmp_path):
        path = str(tmp_path / "forecaster.npz")
        original = StreamingForecaster(service_factory())
        original.ingest("a", rng.normal(size=(4, 2)))
        save_forecaster(original, path)
        wide = ModelConfig(
            input_length=32, horizon=8, n_channels=3, patch_length=8,
            hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
        )
        with pytest.raises(ValueError, match="channels"):
            load_forecaster(ForecastService(LiPFormer(wide)), path)

    def test_restore_validates_window_capacity(self, service_factory, rng, tmp_path):
        """A snapshot too small for the service's window must not restore
        into an every-forecast-is-a-cold-start forecaster silently."""
        path = str(tmp_path / "forecaster.npz")
        original = StreamingForecaster(service_factory(), window_capacity=40)
        original.ingest("a", rng.normal(size=(40, 2)))
        save_forecaster(original, path)
        longer = ModelConfig(
            input_length=96, horizon=8, n_channels=2, patch_length=8,
            hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
        )
        with pytest.raises(ValueError, match="capacity 40"):
            load_forecaster(ForecastService(LiPFormer(longer)), path)

    def test_extensionless_path_roundtrips(self, service_factory, rng, tmp_path):
        """np.savez appends .npz on write; read must honour the same path."""
        path = str(tmp_path / "snap")        # no extension on purpose
        original = StreamingForecaster(service_factory())
        original.ingest("a", rng.normal(size=(40, 2)))
        save_forecaster(original, path)
        restored = load_forecaster(service_factory(), path)
        np.testing.assert_array_equal(
            restored.forecast("a").result(), original.forecast("a").result()
        )


class TestAtomicWrites:
    """A crash mid-checkpoint must never leave a corrupt archive behind."""

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        """A failing re-checkpoint leaves the previous snapshot readable."""
        import repro.cluster.snapshot as snapshot_module

        path = str(tmp_path / "state.npz")
        write_snapshot({"generation": 1}, path)

        real_save_state = snapshot_module.save_state

        def crash_mid_write(payload, target, **kwargs):
            # Simulate dying after bytes hit the disk but before the
            # archive is complete: write garbage, then fail.
            with open(target, "wb") as handle:
                handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(snapshot_module, "save_state", crash_mid_write)
        with pytest.raises(OSError, match="disk full"):
            write_snapshot({"generation": 2}, path)
        monkeypatch.setattr(snapshot_module, "save_state", real_save_state)

        # The published snapshot is still generation 1, and the aborted
        # attempt left no temp litter for an operator to trip over.
        assert read_snapshot(path) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]

    def test_failed_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        import repro.cluster.snapshot as snapshot_module

        def explode(payload, target, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(snapshot_module, "save_state", explode)
        with pytest.raises(OSError, match="disk full"):
            write_snapshot({"a": 1}, str(tmp_path / "state.npz"))
        assert list(tmp_path.iterdir()) == []

    def test_write_goes_through_a_rename(self, tmp_path, monkeypatch):
        """The final path only ever receives a complete archive."""
        replaced = []
        real_replace = os.replace

        def spying_replace(src, dst):
            replaced.append((os.path.basename(src), os.path.basename(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        path = str(tmp_path / "state.npz")
        write_snapshot({"a": np.ones(3)}, path)
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert dst == "state.npz"
        assert src != dst and src.endswith(".npz")
        np.testing.assert_array_equal(read_snapshot(path)["a"], np.ones(3))
