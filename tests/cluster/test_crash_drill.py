"""Crash drill: a worker dies by real ``kill -9``; the cluster recovers.

The process backend's reason to exist beyond throughput: worker death is
an observable OS event, not a simulation.  These tests SIGKILL a live
worker process mid-service and drive detection (:meth:`detect_failures`
must classify without hanging), recovery (:meth:`failover` restores the
victim's tenants from the checkpoint chain onto survivors) and honesty
(the :class:`FailoverReport` accounts for every lost and rolled-back
row, computed from the coordinator's census — the dead worker's memory
is actually unreadable).
"""

import os
import signal

import numpy as np
import pytest

from repro.cluster import ProcessCoordinator, ServiceSpec, ShardedForecaster, WorkerDied
from repro.config import ModelConfig

INPUT_LENGTH = 16
HORIZON = 4
CHANNELS = 2


@pytest.fixture(scope="module")
def spec():
    return ServiceSpec(
        config=ModelConfig(
            input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=CHANNELS,
            patch_length=4, hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=11,
        ),
        max_batch_size=16,
    )


def make_streams(n_tenants, rows, seed=0):
    rng = np.random.default_rng(seed)
    return {
        f"tenant-{i}": rng.normal(size=(rows, CHANNELS)).astype(np.float32)
        for i in range(n_tenants)
    }


def populated(spec, tmp_path, n_shards=3, n_tenants=9):
    cluster = ProcessCoordinator(spec, n_shards=n_shards)
    for tenant, values in make_streams(n_tenants, INPUT_LENGTH + 2).items():
        cluster.ingest(tenant, values)
    cluster.save(str(tmp_path / "ckpt"))
    return cluster


class TestKillMinusNine:
    def test_sigkill_is_detected_without_hanging(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            pid = cluster.worker_pid(victim)
            os.kill(pid, signal.SIGKILL)
            # detect_failures classifies via poll/pipe-EOF/ping budget —
            # bounded time, and only the victim is reported.
            assert cluster.detect_failures(timeout=5.0) == [victim]
            survivors = [s for s in cluster.shard_ids() if s != victim]
            assert survivors and all(
                s not in cluster.detect_failures(timeout=5.0) for s in survivors
            )

    def test_failover_restores_checkpointed_tenants_bit_identically(self, spec, tmp_path):
        streams = make_streams(9, INPUT_LENGTH + 2)
        with populated(spec, tmp_path) as cluster:
            baseline = {t: h.result() for t, h in cluster.forecast_all().items()}
            victim = cluster.shard_for("tenant-0")
            victims = [t for t in streams if cluster.shard_for(t) == victim]
            assert victims, "need a populated victim shard"
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            report = cluster.failover(victim)
            assert report.complete, report
            assert sorted(report.restored) == sorted(victims)
            assert victim not in cluster.shard_ids()
            # Forecasts after recovery are bit-identical to before the
            # crash: checkpoint state, ring re-routing and replica weights
            # all reproduce exactly.
            recovered = {t: h.result() for t, h in cluster.forecast_all().items()}
            for tenant in streams:
                np.testing.assert_array_equal(recovered[tenant], baseline[tenant])

    def test_report_accounts_for_every_lost_and_stale_row(self, spec, tmp_path):
        rng = np.random.default_rng(77)
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            # 3 rows ingested after the checkpoint: rolled back on failover.
            cluster.ingest("tenant-0", rng.normal(size=(3, CHANNELS)).astype(np.float32))
            # A tenant born after the checkpoint, placed on the victim: lost.
            newborns = []
            for index in range(50):
                name = f"newborn-{index}"
                if cluster.shard_for(name) == victim:
                    cluster.ingest(name, rng.normal(size=(4, CHANNELS)).astype(np.float32))
                    newborns.append(name)
                if len(newborns) == 2:
                    break
            assert len(newborns) == 2
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            report = cluster.failover(victim)
            assert sorted(report.lost) == sorted(newborns)
            assert report.stale == {"tenant-0": 3}
            assert not report.complete
            # Lost tenants are gone from the cluster, not half-present.
            assert all(n not in cluster.tenants() for n in newborns)

    def test_dropped_tenant_not_resurrected_by_failover(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            cluster.drop("tenant-0")
            # Re-created after the drop: a fresh incarnation of the key with
            # 2 rows, while the checkpoint still holds the old 18-row payload.
            cluster.ingest("tenant-0", np.zeros((2, CHANNELS), dtype=np.float32))
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            report = cluster.failover(victim)
            # Restoring the checkpoint payload would resurrect deleted
            # history under the new incarnation — honestly lost instead.
            assert "tenant-0" in report.lost
            assert "tenant-0" not in report.restored
            assert "tenant-0" not in cluster.tenants()

    def test_deleted_tenant_is_neither_restored_nor_lost(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            cluster.drop("tenant-0")
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            report = cluster.failover(victim)
            # An intentional deletion isn't data loss: the key simply does
            # not come back.
            assert "tenant-0" not in report.lost
            assert "tenant-0" not in report.restored
            assert "tenant-0" not in cluster.tenants()

    def test_pending_forecasts_fail_with_typed_error(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            handle = cluster.forecast("tenant-0")  # queued, never flushed
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            cluster.failover(victim)
            with pytest.raises(RuntimeError, match="died before"):
                handle.result()

    def test_forecast_all_settles_healthy_shards_despite_crash(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            victim = cluster.shard_for("tenant-0")
            survivors_tenants = [
                t for t in cluster.tenants() if cluster.shard_for(t) != victim
            ]
            assert survivors_tenants
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            with pytest.raises(WorkerDied):
                cluster.forecast_all()
            # The fan-out settled every healthy shard before raising: those
            # tenants' forecasts are resolvable right now, no flush needed.
            cluster_handles = cluster.forecast_all(survivors_tenants)
            for handle in cluster_handles.values():
                assert handle.result().shape == (HORIZON, CHANNELS)

    def test_stats_fold_last_poll_after_crash(self, spec, tmp_path):
        with populated(spec, tmp_path) as cluster:
            {t: h.result() for t, h in cluster.forecast_all().items()}
            before = cluster.service_stats()  # polls + caches per-worker stats
            victim = cluster.shard_for("tenant-0")
            os.kill(cluster.worker_pid(victim), signal.SIGKILL)
            cluster.failover(victim)
            after = cluster.service_stats()
            # The victim's last-polled counters folded into the retired
            # accumulators — its served traffic stays counted.
            assert after.requests >= before.requests
            assert after.flushes >= before.flushes

    def test_failover_without_checkpoint_refuses(self, spec):
        with ProcessCoordinator(spec, n_shards=2, warmup=False) as cluster:
            cluster.ingest("t", np.zeros((4, CHANNELS), dtype=np.float32))
            victim = cluster.shard_for("t")
            cluster.kill_worker(victim)
            with pytest.raises(RuntimeError, match="checkpoint"):
                cluster.failover(victim)

    def test_drill_matches_thread_backend_semantics(self, spec, tmp_path):
        """Identical history, identical checkpoint, identical loss report
        — thread-simulated death and process kill -9 must agree."""
        streams = make_streams(6, INPUT_LENGTH + 2, seed=5)
        extra = np.ones((2, CHANNELS), dtype=np.float32)

        thread = ShardedForecaster(spec, n_shards=2)
        for tenant, values in streams.items():
            thread.ingest(tenant, values)
        thread.save(str(tmp_path / "thread-ckpt"))
        thread.ingest("tenant-0", extra)

        with ProcessCoordinator(spec, n_shards=2) as process:
            for tenant, values in streams.items():
                process.ingest(tenant, values)
            process.save(str(tmp_path / "process-ckpt"))
            process.ingest("tenant-0", extra)

            victim = thread.shard_for("tenant-0")
            assert process.shard_for("tenant-0") == victim  # same ring
            thread_report = thread.failover(victim)
            os.kill(process.worker_pid(victim), signal.SIGKILL)
            process_report = process.failover(victim)

            assert sorted(process_report.restored) == sorted(thread_report.restored)
            assert process_report.lost == thread_report.lost
            assert process_report.stale == thread_report.stale

            expected = {t: h.result() for t, h in thread.forecast_all().items()}
            produced = {t: h.result() for t, h in process.forecast_all().items()}
            for tenant in streams:
                np.testing.assert_array_equal(produced[tenant], expected[tenant])
