"""Tests for the consistent-hash ring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import HashRing, stable_hash

_settings = settings(max_examples=25, deadline=None)

node_names = st.lists(
    st.text(alphabet="abcdefghij-", min_size=1, max_size=8), min_size=1, max_size=6, unique=True
)


def keys(n):
    return [f"tenant-{i}" for i in range(n)]


class TestDeterminism:
    def test_stable_hash_is_process_independent(self):
        # Frozen expectations: a changed hash silently re-partitions every
        # tenant of every saved snapshot, so lock the function down.
        assert stable_hash("tenant-0") == 0x18710BE0ABCDCC0D
        assert stable_hash("") == 0xD41D8CD98F00B204

    def test_same_nodes_same_assignments(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])   # insertion order must not matter
        for key in keys(200):
            assert a.assign(key) == b.assign(key)

    def test_assignments_bulk_matches_pointwise(self):
        ring = HashRing(["s0", "s1"])
        table = ring.assignments(keys(50))
        assert table == {key: ring.assign(key) for key in keys(50)}


class TestTopology:
    def test_membership_and_order(self):
        ring = HashRing(["a", "b"])
        ring.add("c")
        assert ring.nodes() == ["a", "b", "c"]
        assert len(ring) == 3 and "b" in ring
        ring.remove("b")
        assert ring.nodes() == ["a", "c"] and "b" not in ring

    def test_duplicate_add_and_missing_remove_raise(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")
        with pytest.raises(KeyError, match="not on the ring"):
            ring.remove("ghost")

    def test_empty_ring_cannot_assign(self):
        with pytest.raises(RuntimeError, match="empty ring"):
            HashRing().assign("tenant")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert set(ring.assignments(keys(100)).values()) == {"only"}


class TestMinimalDisruption:
    def test_add_moves_only_keys_claimed_by_the_new_node(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=64)
        before = ring.assignments(keys(500))
        ring.add("s3")
        after = ring.assignments(keys(500))
        moved = {key for key in before if before[key] != after[key]}
        assert moved, "a new node should claim some keys"
        assert all(after[key] == "s3" for key in moved), (
            "keys may only move TO the node that joined"
        )

    def test_remove_moves_only_the_departing_nodes_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        before = ring.assignments(keys(500))
        ring.remove("s1")
        after = ring.assignments(keys(500))
        for key in keys(500):
            if before[key] != "s1":
                assert after[key] == before[key], "unrelated keys must not move"
            else:
                assert after[key] != "s1"

    def test_add_then_remove_is_identity(self):
        ring = HashRing(["s0", "s1"], vnodes=32)
        before = ring.assignments(keys(300))
        ring.add("s2")
        ring.remove("s2")
        assert ring.assignments(keys(300)) == before

    def test_expected_fraction_moved_is_about_one_over_n(self):
        n = 4
        ring = HashRing([f"s{i}" for i in range(n)], vnodes=128)
        tenants = keys(2000)
        before = ring.assignments(tenants)
        ring.add("s-new")
        after = ring.assignments(tenants)
        fraction = sum(before[k] != after[k] for k in tenants) / len(tenants)
        # 1/(n+1) = 0.2 in expectation; 128 vnodes keep the variance small.
        assert fraction == pytest.approx(1 / (n + 1), abs=0.08)

    def test_load_is_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=128)
        counts = {}
        for key, node in ring.assignments(keys(4000)).items():
            counts[node] = counts.get(node, 0) + 1
        shares = np.array(list(counts.values())) / 4000
        assert len(counts) == 4
        assert shares.max() < 2.0 * shares.min() + 0.05


class TestPropertyBased:
    @_settings
    @given(node_names, st.integers(min_value=0, max_value=10_000))
    def test_assign_always_lands_on_a_member(self, nodes, salt):
        ring = HashRing(nodes, vnodes=8)
        assert ring.assign(f"key-{salt}") in nodes

    @_settings
    @given(node_names)
    def test_rebuilt_ring_reproduces_assignments(self, nodes):
        first = HashRing(nodes, vnodes=8)
        second = HashRing(list(reversed(nodes)), vnodes=8)
        for key in keys(40):
            assert first.assign(key) == second.assign(key)
