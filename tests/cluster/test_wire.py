"""Tests for the pickle-free wire transport (:mod:`repro.wire`)."""

import datetime
import socket
import threading

import numpy as np
import pytest

from repro import wire


class TestMessageCodec:
    def test_nested_tree_round_trips(self):
        message = {
            "cmd": "ingest",
            "tenant": "meter-7",
            "values": np.arange(12, dtype=np.float32).reshape(6, 2),
            "timestamp": None,
            "nested": {"flags": [True, False], "rate": 0.5, "count": 3},
        }
        decoded = wire.unpack_message(wire.pack_message(message))
        assert decoded["cmd"] == "ingest"
        assert decoded["tenant"] == "meter-7"
        np.testing.assert_array_equal(decoded["values"], message["values"])
        assert decoded["values"].dtype == np.float32
        assert decoded["timestamp"] is None
        assert decoded["nested"] == {"flags": [True, False], "rate": 0.5, "count": 3}

    def test_numpy_scalars_round_trip_as_scalars(self):
        # np.float64 subclasses float and np.ascontiguousarray promotes
        # 0-d to 1-d — both historically mangled scalars; neither may.
        for value in (np.int64(10), np.float64(2.5), np.float32(1.5), np.bool_(True)):
            decoded = wire.unpack_message(wire.pack_message({"v": value}))["v"]
            assert decoded == value
            assert decoded.shape == ()
            assert decoded.dtype == value.dtype

    def test_datetime64_units_preserved(self):
        stamp = np.datetime64("2026-08-08T12:34:56")
        decoded = wire.unpack_message(wire.pack_message({"t": stamp}))["t"]
        assert decoded == stamp
        assert decoded.dtype == stamp.dtype  # unit lives in dtype.str

    def test_stdlib_datetimes_round_trip(self):
        message = {
            "dt": datetime.datetime(2026, 8, 8, 12, 0, 1),
            "d": datetime.date(2026, 8, 8),
        }
        assert wire.unpack_message(wire.pack_message(message)) == message

    def test_non_contiguous_arrays_round_trip(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        view = base[::2, 1::2]
        decoded = wire.unpack_message(wire.pack_message({"a": view}))["a"]
        np.testing.assert_array_equal(decoded, view)

    def test_decoded_arrays_are_writable_copies(self):
        payload = wire.pack_message({"a": np.zeros(4)})
        decoded = wire.unpack_message(payload)["a"]
        decoded[0] = 1.0  # a read-only frombuffer view would raise

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError, match="object-dtype"):
            wire.pack_message({"bad": np.array([object()])})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot snapshot"):
            wire.pack_message({"bad": {1, 2}})

    def test_bad_magic_rejected(self):
        payload = bytearray(wire.pack_message({"ok": True}))
        payload[:4] = b"XXXX"
        with pytest.raises(ValueError, match="bad magic"):
            wire.unpack_message(bytes(payload))

    def test_truncated_payload_rejected(self):
        payload = wire.pack_message({"a": np.arange(100)})
        with pytest.raises(ValueError):
            wire.unpack_message(payload[:-10])

    def test_trailing_garbage_rejected(self):
        payload = wire.pack_message({"ok": True})
        with pytest.raises(ValueError, match="trailing"):
            wire.unpack_message(payload + b"\x00")


class TestFraming:
    def test_send_and_receive_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"cmd": "reply", "data": np.arange(5)}
            wire.send_message(left, message)
            decoded = wire.recv_message(right, timeout=5.0)
            np.testing.assert_array_equal(decoded["data"], np.arange(5))
        finally:
            left.close()
            right.close()

    def test_messages_keep_order(self):
        left, right = socket.socketpair()
        try:
            for index in range(5):
                wire.send_message(left, {"seq": index})
            assert [wire.recv_message(right, timeout=5.0)["seq"] for _ in range(5)] == list(range(5))
        finally:
            left.close()
            right.close()

    def test_large_frame_crosses_in_chunks(self):
        # Bigger than any socket buffer: exercises the sendall/_recv_exact
        # loops.  Sent from a thread because one process can't block on
        # both ends of a full pipe.
        big = np.arange(1_000_000, dtype=np.float64)
        left, right = socket.socketpair()
        try:
            sender = threading.Thread(target=wire.send_message, args=(left, {"big": big}))
            sender.start()
            decoded = wire.recv_message(right, timeout=30.0)
            sender.join()
            np.testing.assert_array_equal(decoded["big"], big)
        finally:
            left.close()
            right.close()

    def test_peer_close_raises_end_of_stream(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(wire.EndOfStream):
                wire.recv_message(right, timeout=5.0)
        finally:
            right.close()

    def test_end_of_stream_is_a_connection_error(self):
        # Handlers must be able to order EndOfStream before the broader
        # (ConnectionError, OSError) net without shadowing.
        assert issubclass(wire.EndOfStream, ConnectionError)

    def test_timeout_mid_silence(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(TimeoutError):
                wire.recv_message(right, timeout=0.1)
        finally:
            left.close()
            right.close()

    def test_insane_frame_length_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((wire.MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
            with pytest.raises(ValueError, match="sanity"):
                wire.recv_message(right, timeout=5.0)
        finally:
            left.close()
            right.close()


class TestErrorChannel:
    def test_known_builtins_rematerialise(self):
        for error, expected in (
            (KeyError("tenant-x"), KeyError),
            (ValueError("bad geometry"), ValueError),
            (TypeError("nope"), TypeError),
            (RuntimeError("boom"), RuntimeError),
        ):
            with pytest.raises(expected):
                wire.raise_remote(wire.error_payload(error))

    def test_unknown_type_becomes_tagged_runtime_error(self):
        class Exotic(Exception):
            pass

        with pytest.raises(RuntimeError, match="Exotic"):
            wire.raise_remote(wire.error_payload(Exotic("private")))

    def test_type_names_never_evaluated(self):
        # A hostile payload names an arbitrary callable; it must come back
        # as a tagged RuntimeError, not an instantiation of that name.
        with pytest.raises(RuntimeError, match="os.system"):
            wire.raise_remote({"type": "os.system", "message": "echo pwned"})

    def test_payload_survives_the_wire(self):
        payload = wire.error_payload(KeyError("gone"))
        decoded = wire.unpack_message(wire.pack_message({"error": payload}))["error"]
        with pytest.raises(KeyError):
            wire.raise_remote(decoded)


class TestSpawn:
    def test_spawn_worker_round_trip_and_eof(self):
        sock, process = wire.spawn_worker("repro.cluster.worker")
        try:
            wire.send_message(sock, {"cmd": "ping"})
            reply = wire.recv_message(sock, timeout=30.0)
            assert reply["ok"] is True
            assert reply["pid"] == process.pid
        finally:
            sock.close()  # worker exits on EOF
            assert process.wait(timeout=10.0) == 0
