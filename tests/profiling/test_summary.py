"""Tests for model summaries and model cards."""

import pytest

from repro.baselines import DLinear
from repro.core import LiPFormer
from repro.profiling import model_card, model_summary


class TestModelSummary:
    def test_contains_top_level_modules(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        text = model_summary(model, max_depth=1)
        assert "base_predictor" in text
        assert "covariate_encoder" in text
        assert "total" in text
        assert f"{model.num_parameters():,}" in text

    def test_depth_controls_detail(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        shallow = model_summary(model, max_depth=1)
        deep = model_summary(model, max_depth=3)
        assert len(deep.splitlines()) > len(shallow.splitlines())

    def test_invalid_depth(self, small_config, rng):
        with pytest.raises(ValueError):
            model_summary(LiPFormer(small_config, rng=rng), max_depth=0)


class TestModelCard:
    def test_card_fields(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        card = model_card(model, name="LiPFormer-test", batch_size=4)
        assert card.name == "LiPFormer-test"
        assert card.parameters == model.num_parameters()
        assert card.macs > 0
        assert card.horizon == small_config.horizon
        assert sum(card.breakdown.values()) == card.parameters

    def test_card_to_text(self, no_covariate_config, rng):
        card = model_card(DLinear(no_covariate_config, rng=rng), batch_size=4)
        text = card.to_text()
        assert "parameters" in text
        assert "MACs" in text
        assert "%" in text
