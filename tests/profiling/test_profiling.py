"""Tests for parameter counting, MAC measurement, timing and edge emulation."""

import os

import numpy as np
import pytest

from repro.baselines import DLinear, PatchTST, VanillaTransformer, create_model
from repro.core import LiPFormer
from repro.profiling import (
    count_parameters,
    edge_inference_profile,
    human_readable_count,
    limit_blas_threads,
    measure_macs,
    parameter_breakdown,
    time_callable,
    time_inference,
    time_training_step,
)


class TestParameterCounting:
    def test_count_matches_module(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        assert count_parameters(model) == model.num_parameters()

    def test_breakdown_sums_to_total(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        breakdown = parameter_breakdown(model)
        assert sum(breakdown.values()) == model.num_parameters()
        assert "base_predictor" in breakdown
        assert "covariate_encoder" in breakdown

    def test_human_readable(self):
        assert human_readable_count(512) == "512"
        assert human_readable_count(66_000) == "66.0K"
        assert human_readable_count(6_400_000) == "6.40M"
        assert human_readable_count(1_420_000_000_000) == "1.42T"

    def test_human_readable_rejects_negative(self):
        with pytest.raises(ValueError):
            human_readable_count(-1)


class TestMacs:
    def test_macs_positive_and_scale_with_batch(self, no_covariate_config, rng):
        model = DLinear(no_covariate_config, rng=rng)
        small = measure_macs(model, batch_size=4)
        large = measure_macs(model, batch_size=8)
        assert small > 0
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_lipformer_cheaper_than_point_wise_transformer(self, no_covariate_config, rng):
        """The headline efficiency claim: LiPFormer needs far fewer MACs."""
        config = no_covariate_config.with_overrides(hidden_dim=32)
        lipformer = LiPFormer(config, rng=rng)
        transformer = VanillaTransformer(config, rng=rng)
        assert measure_macs(lipformer, batch_size=4) < measure_macs(transformer, batch_size=4)

    def test_macs_with_covariates(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        assert measure_macs(model, batch_size=2) > 0


class TestTiming:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(1000)), repeats=2) >= 0

    def test_time_callable_validates_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_inference_and_training_step_timing(self, no_covariate_config, rng):
        model = DLinear(no_covariate_config, rng=rng)
        assert time_inference(model, batch_size=4, repeats=2) > 0
        assert time_training_step(model, batch_size=4, repeats=2) > 0

    def test_training_step_slower_than_inference(self, no_covariate_config, rng):
        model = PatchTST(no_covariate_config.with_overrides(hidden_dim=32), rng=rng)
        inference = time_inference(model, batch_size=16, repeats=3)
        training = time_training_step(model, batch_size=16, repeats=3)
        assert training > inference


class TestEdgeEmulation:
    def test_thread_limiting_restores_environment(self):
        original = os.environ.get("OMP_NUM_THREADS")
        with limit_blas_threads(2):
            assert os.environ["OMP_NUM_THREADS"] == "2"
        assert os.environ.get("OMP_NUM_THREADS") == original

    def test_thread_limit_validation(self):
        with pytest.raises(ValueError):
            with limit_blas_threads(0):
                pass

    def test_edge_profile_keys_and_values(self, no_covariate_config, rng):
        profile = edge_inference_profile(
            model_factory=lambda config: DLinear(config, rng=rng),
            base_config=no_covariate_config,
            input_lengths=(24, 48),
            repeats=1,
            rng=rng,
        )
        assert set(profile) == {24, 48}
        assert all(value > 0 for value in profile.values())

    def test_edge_profile_adjusts_patch_length(self, no_covariate_config, rng):
        # input length 30 is not divisible by the preferred patch length 12;
        # the profile helper must still construct a valid model.
        profile = edge_inference_profile(
            model_factory=lambda config: create_model("LiPFormer", config),
            base_config=no_covariate_config,
            input_lengths=(30,),
            repeats=1,
            rng=rng,
        )
        assert 30 in profile
