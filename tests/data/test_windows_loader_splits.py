"""Tests for chronological splits, sliding windows and the data loader."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    MultivariateTimeSeries,
    SlidingWindowDataset,
    chronological_split,
    load_dataset,
    make_timestamps,
)


def _series(length=200, channels=2):
    values = np.arange(length * channels, dtype=np.float32).reshape(length, channels)
    return MultivariateTimeSeries(values=values, timestamps=make_timestamps(length, 60), name="unit")


class TestChronologicalSplit:
    def test_ratios(self):
        train, validation, test = chronological_split(_series(100), (0.6, 0.2, 0.2))
        assert len(train) == 60
        assert len(validation) == 20
        assert len(test) == 20

    def test_context_overlap(self):
        train, validation, test = chronological_split(_series(100), (0.6, 0.2, 0.2), context_length=10)
        assert len(validation) == 30
        np.testing.assert_allclose(validation.values[:10], train.values[-10:])

    def test_chronological_order_preserved(self):
        train, validation, test = chronological_split(_series(100), (0.7, 0.1, 0.2))
        assert train.values[-1, 0] < validation.values[-1, 0] < test.values[-1, 0]

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            chronological_split(_series(100), (0.5, 0.2, 0.2))
        with pytest.raises(ValueError):
            chronological_split(_series(100), (1.0, -0.2, 0.2))

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            chronological_split(_series(100), (0.6, 0.2, 0.2), context_length=80)


class TestSlidingWindowDataset:
    def test_window_count(self):
        dataset = SlidingWindowDataset(_series(100), input_length=24, horizon=12)
        assert len(dataset) == 100 - 24 - 12 + 1

    def test_stride_reduces_windows(self):
        dense = SlidingWindowDataset(_series(100), 24, 12, stride=1)
        sparse = SlidingWindowDataset(_series(100), 24, 12, stride=5)
        assert len(sparse) == (len(dense) - 1) // 5 + 1

    def test_window_contents_are_contiguous(self):
        dataset = SlidingWindowDataset(_series(100, channels=1), input_length=4, horizon=2)
        sample = dataset[10]
        np.testing.assert_allclose(sample.x[:, 0], np.arange(10, 14))
        np.testing.assert_allclose(sample.y[:, 0], np.arange(14, 16))

    def test_negative_index(self):
        dataset = SlidingWindowDataset(_series(50), 10, 5)
        last = dataset[-1]
        explicit = dataset[len(dataset) - 1]
        np.testing.assert_allclose(last.x, explicit.x)

    def test_out_of_range_raises(self):
        dataset = SlidingWindowDataset(_series(50), 10, 5)
        with pytest.raises(IndexError):
            dataset[len(dataset)]

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            SlidingWindowDataset(_series(20), input_length=18, horizon=5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SlidingWindowDataset(_series(50), 0, 5)
        with pytest.raises(ValueError):
            SlidingWindowDataset(_series(50), 10, 5, stride=0)

    def test_covariates_cover_forecast_range(self):
        series = load_dataset("ETTh1", n_timestamps=300, n_channels=2)
        dataset = SlidingWindowDataset(series, input_length=24, horizon=12)
        sample = dataset[0]
        assert sample.future_numerical.shape == (12, series.covariates.n_numerical)
        assert sample.future_categorical.shape == (12, series.covariates.n_categorical)
        # Covariates must be aligned with the *forecast* range, i.e. rows
        # [input_length, input_length + horizon) of the full series.
        np.testing.assert_allclose(
            sample.future_numerical, series.covariates.numerical[24:36]
        )

    def test_as_arrays_shapes(self):
        dataset = SlidingWindowDataset(_series(100, channels=3), 24, 12)
        batch = dataset.as_arrays(np.arange(5))
        assert batch["x"].shape == (5, 24, 3)
        assert batch["y"].shape == (5, 12, 3)
        assert batch["future_numerical"] is None


class TestDataLoader:
    def test_batching(self):
        dataset = SlidingWindowDataset(_series(100), 24, 12)
        loader = DataLoader(dataset, batch_size=16)
        batches = list(loader)
        assert len(batches) == len(loader)
        assert batches[0]["x"].shape[0] == 16
        total = sum(len(batch["x"]) for batch in batches)
        assert total == len(dataset)

    def test_drop_last(self):
        dataset = SlidingWindowDataset(_series(100), 24, 12)
        loader = DataLoader(dataset, batch_size=16, drop_last=True)
        assert all(len(batch["x"]) == 16 for batch in loader)

    def test_shuffle_changes_order_but_not_content(self):
        dataset = SlidingWindowDataset(_series(100, channels=1), 24, 12)
        plain = np.concatenate([batch["x"][:, 0, 0] for batch in DataLoader(dataset, 8)])
        shuffled = np.concatenate(
            [batch["x"][:, 0, 0] for batch in DataLoader(dataset, 8, shuffle=True, rng=np.random.default_rng(0))]
        )
        assert not np.allclose(plain, shuffled)
        np.testing.assert_allclose(np.sort(plain), np.sort(shuffled))

    def test_invalid_batch_size(self):
        dataset = SlidingWindowDataset(_series(100), 24, 12)
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)
