"""Tests for data containers and covariate schemas."""

import numpy as np
import pytest

from repro.data import (
    CYCLE_SCHEMA,
    ELECTRICITY_PRICE_SCHEMA,
    FutureCovariates,
    MultivariateTimeSeries,
    implicit_temporal_covariates,
    make_timestamps,
)
from repro.data.covariates import CovariateField, CovariateSchema


def _covariates(length=10, cn=2, ct=1):
    return FutureCovariates(
        numerical=np.zeros((length, cn), dtype=np.float32),
        categorical=np.zeros((length, ct), dtype=np.int64),
        numerical_names=[f"n{i}" for i in range(cn)],
        categorical_names=[f"c{i}" for i in range(ct)],
        cardinalities=[3] * ct,
    )


class TestFutureCovariates:
    def test_dimensions(self):
        covariates = _covariates(12, cn=3, ct=2)
        assert covariates.n_numerical == 3
        assert covariates.n_categorical == 2
        assert covariates.n_total == 5
        assert len(covariates) == 12

    def test_misaligned_lengths_raise(self):
        with pytest.raises(ValueError):
            FutureCovariates(
                numerical=np.zeros((10, 1)), categorical=np.zeros((9, 1), dtype=np.int64), cardinalities=[2]
            )

    def test_cardinality_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            FutureCovariates(
                numerical=np.zeros((5, 1)), categorical=np.zeros((5, 2), dtype=np.int64), cardinalities=[2]
            )

    def test_code_exceeding_cardinality_raises(self):
        categorical = np.full((5, 1), 7, dtype=np.int64)
        with pytest.raises(ValueError):
            FutureCovariates(numerical=np.zeros((5, 1)), categorical=categorical, cardinalities=[3])

    def test_slice(self):
        covariates = _covariates(10)
        window = covariates.slice(2, 6)
        assert len(window) == 4
        assert window.cardinalities == covariates.cardinalities


class TestMultivariateTimeSeries:
    def _series(self, length=20, channels=3, with_covariates=False):
        return MultivariateTimeSeries(
            values=np.arange(length * channels, dtype=np.float32).reshape(length, channels),
            timestamps=make_timestamps(length, 60),
            covariates=_covariates(length) if with_covariates else None,
            name="unit",
        )

    def test_basic_properties(self):
        series = self._series()
        assert series.n_timestamps == 20
        assert series.n_channels == 3
        assert not series.has_covariates
        assert len(series.channel_names) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(values=np.zeros(5), timestamps=make_timestamps(5, 60))

    def test_timestamp_alignment_validation(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(values=np.zeros((5, 2)), timestamps=make_timestamps(4, 60))

    def test_channel_name_validation(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(
                values=np.zeros((5, 2)), timestamps=make_timestamps(5, 60), channel_names=["only_one"]
            )

    def test_covariate_alignment_validation(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(
                values=np.zeros((5, 2)), timestamps=make_timestamps(5, 60), covariates=_covariates(4)
            )

    def test_slice_preserves_covariates(self):
        series = self._series(with_covariates=True)
        window = series.slice(5, 15)
        assert window.n_timestamps == 10
        assert window.has_covariates
        assert len(window.covariates) == 10

    def test_select_channels(self):
        series = self._series()
        selected = series.select_channels([2])
        assert selected.n_channels == 1
        np.testing.assert_allclose(selected.values[:, 0], series.values[:, 2])

    def test_summary(self):
        summary = self._series().summary()
        assert summary["variables"] == 3
        assert summary["timestamps"] == 20


class TestCovariateSchemas:
    def test_electricity_price_matches_table_iv(self):
        # Table IV: 61 future covariate fields for Electricity-Price.
        assert ELECTRICITY_PRICE_SCHEMA.n_total == 61
        assert ELECTRICITY_PRICE_SCHEMA.n_numerical == 49
        assert ELECTRICITY_PRICE_SCHEMA.n_categorical == 12

    def test_cycle_matches_table_iv(self):
        # Table IV: 22 future covariate fields for Cycle.
        assert CYCLE_SCHEMA.n_total == 22
        assert CYCLE_SCHEMA.n_numerical == 21
        assert CYCLE_SCHEMA.n_categorical == 1

    def test_schema_name_lists_match_widths(self):
        for schema in (ELECTRICITY_PRICE_SCHEMA, CYCLE_SCHEMA):
            assert len(schema.numerical_names()) == schema.n_numerical
            assert len(schema.categorical_names()) == schema.n_categorical
            assert len(schema.cardinalities()) == schema.n_categorical

    def test_field_validation(self):
        with pytest.raises(ValueError):
            CovariateField("bad", 1, "something")
        with pytest.raises(ValueError):
            CovariateField("bad", 1, "categorical", cardinality=1)
        with pytest.raises(ValueError):
            CovariateField("bad", 0, "numerical")

    def test_schema_width_accessors(self):
        schema = CovariateSchema(
            dataset="demo",
            fields=[
                CovariateField("a", 2, "numerical"),
                CovariateField("b", 1, "categorical", cardinality=4),
            ],
        )
        assert schema.numerical_names() == ["a_0", "a_1"]
        assert schema.categorical_names() == ["b"]
        assert schema.cardinalities() == [4]


class TestImplicitCovariates:
    def test_shapes_and_cardinalities(self):
        stamps = make_timestamps(100, 60)
        covariates = implicit_temporal_covariates(stamps)
        assert covariates.n_numerical == 4
        assert covariates.n_categorical == 5       # 4 calendar fields + weekend flag
        assert covariates.cardinalities[-1] == 2

    def test_codes_respect_cardinalities(self):
        stamps = make_timestamps(5000, 30)
        covariates = implicit_temporal_covariates(stamps)
        for column, cardinality in enumerate(covariates.cardinalities):
            assert covariates.categorical[:, column].max() < cardinality
