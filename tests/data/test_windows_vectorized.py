"""Regression tests: vectorised ``as_arrays`` matches the per-sample loop.

``SlidingWindowDataset.as_arrays`` is the data hot path (every DataLoader
batch and the serving backfill go through it); it now gathers windows with
``numpy.lib.stride_tricks.sliding_window_view``.  These tests pin the fast
path to the reference loop implementation bit for bit — including stride
> 1, covariate slices, negative indices and error behaviour.
"""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.loader import DataLoader
from repro.data.windows import SlidingWindowDataset


def _assert_batches_equal(fast, slow):
    assert set(fast) == set(slow)
    for key in fast:
        if slow[key] is None:
            assert fast[key] is None
        else:
            assert fast[key].dtype == slow[key].dtype
            np.testing.assert_array_equal(fast[key], slow[key])


@pytest.fixture(scope="module")
def covariate_series():
    return load_dataset("ETTh1", n_timestamps=600, seed=11, include_covariates=True)


@pytest.fixture(scope="module")
def plain_series():
    return load_dataset("ETTh1", n_timestamps=600, seed=11, include_covariates=False)


class TestVectorisedAsArrays:
    @pytest.mark.parametrize("stride", [1, 2, 5])
    def test_matches_loop_all_windows(self, covariate_series, stride):
        dataset = SlidingWindowDataset(covariate_series, 48, 12, stride=stride)
        _assert_batches_equal(dataset.as_arrays(), dataset._as_arrays_loop())

    @pytest.mark.parametrize("stride", [1, 3])
    def test_matches_loop_on_index_subsets(self, covariate_series, stride):
        dataset = SlidingWindowDataset(covariate_series, 48, 12, stride=stride)
        n = len(dataset)
        for indices in (
            np.array([0]),
            np.array([n - 1]),
            np.array([3, 1, 4, 1, 5]),            # duplicates, unsorted
            np.arange(0, n, 7),
            [2, 9],                                # plain list
        ):
            _assert_batches_equal(dataset.as_arrays(indices), dataset._as_arrays_loop(indices))

    def test_negative_indices(self, covariate_series):
        dataset = SlidingWindowDataset(covariate_series, 48, 12, stride=2)
        indices = np.array([-1, -len(dataset), 0])
        _assert_batches_equal(dataset.as_arrays(indices), dataset._as_arrays_loop(indices))

    def test_without_covariates(self, plain_series):
        dataset = SlidingWindowDataset(plain_series, 48, 12, stride=2)
        batch = dataset.as_arrays()
        assert batch["future_numerical"] is None
        assert batch["future_categorical"] is None
        _assert_batches_equal(batch, dataset._as_arrays_loop())

    @pytest.mark.parametrize("bad", [[999], [-999]])
    def test_out_of_range_raises_index_error(self, covariate_series, bad):
        dataset = SlidingWindowDataset(covariate_series, 48, 12)
        with pytest.raises(IndexError):
            dataset.as_arrays(bad)

    def test_output_is_writable_and_owns_memory(self, covariate_series):
        """DataLoader consumers mutate batches; views over the series would alias."""
        dataset = SlidingWindowDataset(covariate_series, 48, 12)
        batch = dataset.as_arrays(np.array([0, 1]))
        original = covariate_series.values[0, 0]
        batch["x"][0, 0, 0] = original + 123.0
        assert covariate_series.values[0, 0] == original

    def test_loader_batches_match_loop(self, covariate_series):
        dataset = SlidingWindowDataset(covariate_series, 48, 12, stride=3)
        loader = DataLoader(dataset, batch_size=16)
        start = 0
        for batch in loader:
            size = len(batch["x"])
            reference = dataset._as_arrays_loop(np.arange(start, start + size))
            _assert_batches_equal(batch, reference)
            start += size
        assert start == len(dataset)
