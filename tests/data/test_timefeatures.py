"""Tests for temporal feature encodings."""

import numpy as np
import pytest

from repro.data import (
    TIME_FEATURE_CARDINALITIES,
    TIME_FEATURE_NAMES,
    categorical_time_features,
    is_weekend,
    make_timestamps,
    normalized_time_features,
)


class TestMakeTimestamps:
    def test_length_and_spacing(self):
        stamps = make_timestamps(10, freq_minutes=15)
        assert len(stamps) == 10
        deltas = np.diff(stamps).astype("timedelta64[m]").astype(int)
        assert np.all(deltas == 15)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_timestamps(0, 60)
        with pytest.raises(ValueError):
            make_timestamps(10, 0)

    def test_custom_start(self):
        stamps = make_timestamps(1, 60, start="2020-01-01T12:00")
        assert str(stamps[0]).startswith("2020-01-01T12:00")


class TestCategoricalFeatures:
    def test_known_date_fields(self):
        # 2016-07-01 was a Friday (weekday index 4).
        stamps = make_timestamps(3, freq_minutes=60, start="2016-07-01T00:00")
        features = categorical_time_features(stamps)
        assert features.shape == (3, 4)
        assert features[0, 0] == 0          # hour
        assert features[1, 0] == 1
        assert features[0, 1] == 4          # Friday
        assert features[0, 2] == 0          # first day of month (0-based)
        assert features[0, 3] == 6          # July (0-based)

    def test_values_within_cardinalities(self):
        stamps = make_timestamps(2000, freq_minutes=60)
        features = categorical_time_features(stamps)
        for column, name in enumerate(TIME_FEATURE_NAMES):
            assert features[:, column].max() < TIME_FEATURE_CARDINALITIES[name]
            assert features[:, column].min() >= 0

    def test_hour_cycles_daily(self):
        stamps = make_timestamps(48, freq_minutes=60)
        features = categorical_time_features(stamps)
        np.testing.assert_array_equal(features[:24, 0], features[24:, 0])


class TestNormalizedFeatures:
    def test_range(self):
        stamps = make_timestamps(5000, freq_minutes=30)
        features = normalized_time_features(stamps)
        assert features.shape == (5000, 4)
        assert features.min() >= -0.5 - 1e-6
        assert features.max() <= 0.5 + 1e-6

    def test_dtype_is_float32(self):
        features = normalized_time_features(make_timestamps(10, 60))
        assert features.dtype == np.float32


class TestWeekend:
    def test_weekend_detection(self):
        # 2016-07-02 is a Saturday, 2016-07-03 a Sunday, 2016-07-04 a Monday.
        stamps = np.array(
            [np.datetime64("2016-07-02T10:00"), np.datetime64("2016-07-03T10:00"), np.datetime64("2016-07-04T10:00")]
        )
        np.testing.assert_array_equal(is_weekend(stamps), [True, True, False])

    def test_weekend_fraction_over_long_range(self):
        stamps = make_timestamps(24 * 7 * 8, freq_minutes=60)
        fraction = is_weekend(stamps).mean()
        assert fraction == pytest.approx(2.0 / 7.0, abs=0.01)
