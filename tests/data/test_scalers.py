"""Tests for feature scalers, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp
from hypothesis import strategies as st

from repro.data import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_transformed_statistics(self, rng):
        data = rng.standard_normal((500, 4)) * 5 + 3
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(scaled.std(axis=0), np.ones(4), atol=1e-4)

    def test_inverse_round_trip(self, rng):
        data = rng.standard_normal((100, 3)) * 2 + 1
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, rtol=1e-4, atol=1e-4)

    def test_constant_channel_does_not_divide_by_zero(self):
        data = np.ones((50, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((3, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    def test_fit_statistics_come_from_fit_data_only(self, rng):
        train = rng.standard_normal((100, 2))
        test = rng.standard_normal((100, 2)) + 100
        scaler = StandardScaler().fit(train)
        transformed_test = scaler.transform(test)
        assert transformed_test.mean() > 10  # shifted data stays shifted

    def test_inverse_transform_keeps_float64_precision(self, rng):
        """Regression: a float32 downcast on the inverse lost whole units on
        large-magnitude channels (float32 resolution at 1e8 is ~8)."""
        data = rng.standard_normal((200, 2)) * 3.0 + 1e8
        scaler = StandardScaler().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        assert restored.dtype == np.float64
        np.testing.assert_allclose(restored, data, rtol=1e-6)
        # float32 could not represent the channel offset this tightly
        assert np.abs(restored - data).max() < 1.0


class TestMinMaxScaler:
    def test_range_is_unit_interval(self, rng):
        data = rng.standard_normal((200, 3)) * 7
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= -1e-6
        assert scaled.max() <= 1 + 1e-6

    def test_inverse_round_trip(self, rng):
        data = rng.standard_normal((50, 2)) * 3
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, rtol=1e-4, atol=1e-4)

    def test_constant_channel(self):
        scaled = MinMaxScaler().fit_transform(np.full((10, 1), 4.0))
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((3, 2)))

    def test_inverse_transform_keeps_float64_precision(self, rng):
        data = rng.standard_normal((200, 2)) + 1e8
        scaler = MinMaxScaler().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        assert restored.dtype == np.float64
        np.testing.assert_allclose(restored, data, rtol=1e-6)
        assert np.abs(restored - data).max() < 1.0


class TestScalerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(5, 40), st.integers(1, 5)),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    def test_standard_scaler_round_trip_property(self, data):
        scaler = StandardScaler().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        np.testing.assert_allclose(restored, data, rtol=1e-3, atol=1e-2)

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(5, 40), st.integers(1, 5)),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    def test_minmax_round_trip_property(self, data):
        scaler = MinMaxScaler().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        np.testing.assert_allclose(restored, data, rtol=1e-3, atol=1e-2)
