"""Tests for the synthetic benchmark dataset registry."""

import numpy as np
import pytest

from repro.data import DATASET_SPECS, available_datasets, dataset_statistics, load_dataset


class TestRegistry:
    def test_nine_datasets_registered(self):
        # Paper Table II lists nine benchmark datasets.
        assert len(available_datasets()) == 9

    def test_table_ii_statistics(self):
        # Spot-check the statistics against paper Table II.
        assert DATASET_SPECS["ETTh1"].n_channels == 7
        assert DATASET_SPECS["ETTh1"].n_timestamps == 17420
        assert DATASET_SPECS["ETTm1"].n_timestamps == 69680
        assert DATASET_SPECS["Weather"].n_channels == 21
        assert DATASET_SPECS["Electricity"].n_channels == 321
        assert DATASET_SPECS["Traffic"].n_channels == 862
        assert DATASET_SPECS["Cycle"].n_channels == 22
        assert DATASET_SPECS["ElectricityPrice"].n_channels == 40

    def test_split_ratios(self):
        assert DATASET_SPECS["ETTh2"].split_ratio == (0.6, 0.2, 0.2)
        assert DATASET_SPECS["Traffic"].split_ratio == (0.7, 0.1, 0.2)

    def test_dataset_statistics_rows(self):
        rows = dataset_statistics()
        assert len(rows) == 9
        assert {row["dataset"] for row in rows} == set(available_datasets())

    def test_only_two_datasets_have_explicit_covariates(self):
        explicit = [name for name, spec in DATASET_SPECS.items() if spec.has_explicit_covariates]
        assert sorted(explicit) == ["Cycle", "ElectricityPrice"]


class TestLoadDataset:
    @pytest.mark.parametrize("name", ["ETTh1", "ETTm2", "Weather", "Electricity", "Traffic"])
    def test_small_instances_load(self, name):
        series = load_dataset(name, n_timestamps=500, n_channels=4, seed=0)
        assert series.values.shape == (500, 4)
        assert np.all(np.isfinite(series.values))
        assert series.has_covariates

    def test_default_channel_count_matches_spec(self):
        series = load_dataset("ETTh1", n_timestamps=400)
        assert series.n_channels == 7

    def test_deterministic_given_seed(self):
        a = load_dataset("ETTh1", n_timestamps=300, seed=11)
        b = load_dataset("ETTh1", n_timestamps=300, seed=11)
        np.testing.assert_allclose(a.values, b.values)

    def test_different_seeds_differ(self):
        a = load_dataset("ETTh1", n_timestamps=300, seed=1)
        b = load_dataset("ETTh1", n_timestamps=300, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_different_datasets_differ(self):
        a = load_dataset("ETTh1", n_timestamps=300, seed=1)
        b = load_dataset("ETTh2", n_timestamps=300, seed=1)
        assert not np.allclose(a.values, b.values)

    def test_name_aliases(self):
        assert load_dataset("etth1", n_timestamps=200).name == "ETTh1"
        assert load_dataset("electricity_price", n_timestamps=200, n_channels=2).name == "ElectricityPrice"
        assert load_dataset("Electri-Price", n_timestamps=200, n_channels=2).name == "ElectricityPrice"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("NotADataset")

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            load_dataset("ETTh1", n_timestamps=10)

    def test_invalid_channels_raises(self):
        with pytest.raises(ValueError):
            load_dataset("ETTh1", n_timestamps=200, n_channels=0)

    def test_without_covariates(self):
        series = load_dataset("ETTh1", n_timestamps=200, include_covariates=False)
        assert not series.has_covariates


class TestDatasetCharacter:
    def test_traffic_values_are_rates(self):
        series = load_dataset("Traffic", n_timestamps=600, n_channels=5, seed=0)
        assert series.values.min() >= 0.0
        assert series.values.max() <= 1.0

    def test_electricity_is_positive(self):
        series = load_dataset("Electricity", n_timestamps=600, n_channels=5, seed=0)
        assert series.values.min() > 0.0

    def test_cycle_counts_are_non_negative(self):
        series = load_dataset("Cycle", n_timestamps=600, n_channels=3, seed=0)
        assert series.values.min() >= 0.0

    def test_explicit_covariate_schema_widths(self):
        cycle = load_dataset("Cycle", n_timestamps=400, n_channels=2)
        assert cycle.covariates.n_numerical == 21
        assert cycle.covariates.n_categorical == 1
        price = load_dataset("ElectricityPrice", n_timestamps=400, n_channels=2)
        assert price.covariates.n_numerical == 49
        assert price.covariates.n_categorical == 12

    def test_implicit_covariates_on_public_datasets(self):
        series = load_dataset("Weather", n_timestamps=400, n_channels=4)
        assert series.covariates.n_numerical == 4
        assert series.covariates.n_categorical == 5

    def test_daily_periodicity_present_in_ett(self):
        series = load_dataset("ETTh1", n_timestamps=24 * 40, n_channels=3, seed=0)
        channel = series.values[:, 0].astype(np.float64)
        channel = channel - channel.mean()
        spectrum = np.abs(np.fft.rfft(channel))
        daily_bin = len(channel) // 24
        window = spectrum[daily_bin - 2 : daily_bin + 3]
        # energy at the daily frequency should be well above the median level
        assert window.max() > 3 * np.median(spectrum[1:])

    def test_electricity_price_depends_on_covariates(self):
        series = load_dataset("ElectricityPrice", n_timestamps=2000, n_channels=2, seed=0)
        residual = (
            series.covariates.numerical[:, 0]          # load forecast
            - series.covariates.numerical[:, 2]        # renewables
        )
        price = series.values[:, 0]
        correlation = np.corrcoef(residual, price)[0, 1]
        assert correlation > 0.4
