"""Tests for the incremental RollingScaler against the offline StandardScaler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import RollingScaler, StandardScaler


class TestWelfordMatchesOfflineFit:
    def test_chunked_ingest_matches_fit(self, rng):
        data = rng.standard_normal((400, 3)) * 7 + 42
        offline = StandardScaler().fit(data)
        rolling = RollingScaler()
        for start in range(0, len(data), 37):      # ragged chunk sizes
            rolling.update(data[start:start + 37])
        np.testing.assert_allclose(rolling.mean_, offline.mean_, rtol=1e-12)
        np.testing.assert_allclose(rolling.std_, offline.std_, rtol=1e-10)
        assert rolling.n_seen == 400

    def test_row_at_a_time_matches_fit(self, rng):
        data = rng.standard_normal((100, 2)) * 3 - 5
        rolling = RollingScaler()
        for row in data:
            rolling.update(row)                    # 1-D single observations
        offline = StandardScaler().fit(data)
        np.testing.assert_allclose(rolling.mean_, offline.mean_, rtol=1e-12)
        np.testing.assert_allclose(rolling.std_, offline.std_, rtol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        data=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 60), st.integers(1, 4)),
            # Quantised to 1e-3 so per-channel spreads are either exactly 0
            # (both scalers floor the std) or far above the 1e-8 eps floor —
            # a spread straddling eps would flake on round-off alone.
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False).map(
                lambda v: float(np.round(v, 3))
            ),
        ),
        n_chunks=st.integers(1, 5),
    )
    def test_property_any_chunking_matches_fit(self, data, n_chunks):
        """Statistics are invariant to how the stream was chunked."""
        rolling = RollingScaler()
        for chunk in np.array_split(data, n_chunks):
            rolling.update(chunk)
        offline = StandardScaler().fit(data)
        np.testing.assert_allclose(rolling.mean_, offline.mean_, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(rolling.std_, offline.std_, rtol=1e-7, atol=1e-9)

    def test_constant_channel_floors_std_like_standard_scaler(self):
        data = np.ones((30, 2))
        rolling = RollingScaler().update(data)
        offline = StandardScaler().fit(data)
        np.testing.assert_array_equal(rolling.std_, offline.std_)
        assert np.all(np.isfinite(rolling.transform(data)))


class TestTransformContract:
    def test_transform_matches_standard_scaler(self, rng):
        data = rng.standard_normal((200, 3)) * 11 + 2
        rolling = RollingScaler().update(data)
        offline = StandardScaler().fit(data)
        np.testing.assert_allclose(rolling.transform(data), offline.transform(data),
                                   rtol=1e-6, atol=1e-6)
        assert rolling.transform(data).dtype == np.float32

    def test_inverse_round_trip_keeps_float64_precision(self, rng):
        data = rng.standard_normal((150, 2)) * 4 + 1e8   # large-magnitude channel
        rolling = RollingScaler().update(data)
        restored = rolling.inverse_transform(rolling.transform(data))
        assert restored.dtype == np.float64
        np.testing.assert_allclose(restored, data, rtol=1e-6)

    def test_to_standard_scaler_freezes_statistics(self, rng):
        data = rng.standard_normal((80, 2)) * 2 + 9
        rolling = RollingScaler().update(data)
        frozen = rolling.to_standard_scaler()
        probe = rng.standard_normal((10, 2))
        np.testing.assert_array_equal(frozen.transform(probe), rolling.transform(probe))
        rolling.update(rng.standard_normal((80, 2)) + 100)   # drift the live scaler
        assert not np.allclose(frozen.mean_, rolling.mean_)
        np.testing.assert_array_equal(frozen.transform(probe), frozen.transform(probe))


class TestValidation:
    def test_unfitted_access_raises(self):
        scaler = RollingScaler()
        with pytest.raises(RuntimeError):
            scaler.transform(np.ones((3, 2)))
        with pytest.raises(RuntimeError):
            _ = scaler.mean_
        assert scaler.n_channels is None

    def test_channel_mismatch_raises(self):
        scaler = RollingScaler().update(np.ones((4, 2)))
        with pytest.raises(ValueError, match="channels"):
            scaler.update(np.ones((4, 3)))

    def test_bad_ndim_raises(self):
        with pytest.raises(ValueError):
            RollingScaler().update(np.ones((2, 2, 2)))

    def test_empty_update_is_a_noop(self):
        scaler = RollingScaler()
        scaler.update(np.zeros((0, 3)))
        assert scaler.n_seen == 0
