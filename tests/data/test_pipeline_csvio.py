"""Tests for the forecasting data pipeline and CSV round trip."""

import os

import numpy as np
import pytest

from repro.data import load_csv, load_dataset, prepare_forecasting_data, save_csv


class TestPrepareForecastingData:
    def test_shapes_and_loaders(self):
        data = prepare_forecasting_data("ETTh1", input_length=48, horizon=12, n_timestamps=1000, stride=4)
        train_loader, val_loader, test_loader = data.loaders(batch_size=16)
        batch = next(iter(train_loader))
        assert batch["x"].shape[1:] == (48, 7)
        assert batch["y"].shape[1:] == (12, 7)
        assert len(data.train) > len(data.validation)
        assert len(list(val_loader)) > 0 and len(list(test_loader)) > 0

    def test_scaler_fitted_on_training_split_only(self):
        data = prepare_forecasting_data("ETTh1", input_length=48, horizon=12, n_timestamps=1000)
        # Training windows should be (approximately) standardised ...
        train_batch = data.train.as_arrays(np.arange(len(data.train)))
        assert abs(train_batch["x"].mean()) < 0.3
        # ... and the scaler must be able to invert.
        restored = data.scaler.inverse_transform(data.scaler.transform(np.ones((5, data.n_channels))))
        np.testing.assert_allclose(restored, np.ones((5, data.n_channels)), rtol=1e-4)

    def test_covariate_dimensions_for_explicit_dataset(self):
        data = prepare_forecasting_data(
            "Cycle", input_length=48, horizon=12, n_timestamps=1000, n_channels=3
        )
        assert data.covariate_numerical_dim == 21
        assert data.covariate_categorical_cardinalities == (2,)
        batch = next(iter(data.loaders(8)[0]))
        assert batch["future_numerical"].shape[2] == 21

    def test_covariate_dimensions_for_implicit_dataset(self):
        data = prepare_forecasting_data("ETTh2", input_length=48, horizon=12, n_timestamps=1000)
        assert data.covariate_numerical_dim == 4
        assert len(data.covariate_categorical_cardinalities) == 5

    def test_without_covariates(self):
        data = prepare_forecasting_data(
            "ETTh1", input_length=48, horizon=12, n_timestamps=1000, include_covariates=False
        )
        assert data.covariate_numerical_dim == 0
        batch = next(iter(data.loaders(8)[0]))
        assert batch["future_numerical"] is None

    def test_numerical_covariates_are_standardised(self):
        data = prepare_forecasting_data(
            "ElectricityPrice", input_length=48, horizon=12, n_timestamps=1000, n_channels=2
        )
        batch = data.train.as_arrays(np.arange(min(100, len(data.train))))
        # load forecasts are ~30000 MW raw; after scaling they must be O(1)
        assert np.abs(batch["future_numerical"]).max() < 20

    def test_accepts_preloaded_series(self):
        series = load_dataset("ETTh1", n_timestamps=800, n_channels=3, seed=9)
        data = prepare_forecasting_data("ignored", input_length=48, horizon=12, series=series)
        assert data.name == "ETTh1"
        assert data.n_channels == 3

    def test_preparing_same_series_twice_is_idempotent(self):
        """Regression: _scale_covariates used to standardise the caller's
        covariates in place, so a second prepare over the same series object
        re-scaled already-scaled covariates."""
        series = load_dataset("ElectricityPrice", n_timestamps=900, n_channels=2, seed=4)
        raw_covariates = series.covariates.numerical.copy()
        first = prepare_forecasting_data("ignored", input_length=48, horizon=12, series=series)
        np.testing.assert_array_equal(series.covariates.numerical, raw_covariates)
        second = prepare_forecasting_data("ignored", input_length=48, horizon=12, series=series)
        for split in ("train", "validation", "test"):
            batch_a = getattr(first, split).as_arrays()
            batch_b = getattr(second, split).as_arrays()
            for key in ("x", "y", "future_numerical", "future_categorical"):
                np.testing.assert_array_equal(batch_a[key], batch_b[key])


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path):
        series = load_dataset("ETTh1", n_timestamps=200, n_channels=3, seed=1)
        path = os.path.join(tmp_path, "etth1.csv")
        save_csv(series, path)
        loaded = load_csv(path)
        assert loaded.values.shape == series.values.shape
        np.testing.assert_allclose(loaded.values, series.values, atol=1e-4)
        assert loaded.channel_names == series.channel_names

    def test_load_rejects_missing_date_column(self, tmp_path):
        path = os.path.join(tmp_path, "bad.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = os.path.join(tmp_path, "empty.csv")
        with open(path, "w") as handle:
            handle.write("date,ch0\n")
        with pytest.raises(ValueError):
            load_csv(path)
