"""Tests for the synthetic series building blocks."""

import numpy as np
import pytest

from repro.data import synthetic


class TestTrends:
    def test_linear_trend(self):
        trend = synthetic.linear_trend(5, slope=2.0, intercept=1.0)
        np.testing.assert_allclose(trend, [1, 3, 5, 7, 9])

    def test_random_walk_trend_is_cumulative(self, rng):
        walk = synthetic.random_walk_trend(100, 0.1, rng)
        assert walk.shape == (100,)
        # A random walk wanders: its variance grows with time.
        assert np.var(walk[50:]) > 0


class TestSeasonality:
    def test_seasonal_period(self):
        period = 24
        series = synthetic.seasonal_component(24 * 10, period, amplitude=1.0)
        np.testing.assert_allclose(series[:24], series[24:48], atol=1e-9)

    def test_seasonal_amplitude(self):
        series = synthetic.seasonal_component(1000, 24, amplitude=3.0)
        assert np.max(np.abs(series)) == pytest.approx(3.0, rel=1e-2)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            synthetic.seasonal_component(10, 0)

    def test_multi_harmonic_periodicity(self, rng):
        series = synthetic.multi_harmonic(24 * 20, 24, np.array([1.0, 0.5]), rng)
        np.testing.assert_allclose(series[:24], series[24:48], atol=1e-8)

    def test_dominant_frequency_matches_period(self, rng):
        period = 24
        series = synthetic.multi_harmonic(24 * 50, period, np.array([1.0]), rng)
        spectrum = np.abs(np.fft.rfft(series))
        dominant = np.argmax(spectrum[1:]) + 1
        expected_bin = len(series) / period
        assert dominant == pytest.approx(expected_bin, abs=1)


class TestNoise:
    def test_ar1_rejects_nonstationary_phi(self, rng):
        with pytest.raises(ValueError):
            synthetic.ar1_noise(10, 1.0, 1.0, rng)

    def test_ar1_autocorrelation_sign(self, rng):
        noise = synthetic.ar1_noise(20000, 0.8, 1.0, rng)
        correlation = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert correlation == pytest.approx(0.8, abs=0.05)

    def test_ar1_zero_phi_is_white(self, rng):
        noise = synthetic.ar1_noise(20000, 0.0, 1.0, rng)
        correlation = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert abs(correlation) < 0.05


class TestRegimeShiftsAndProfiles:
    def test_no_shifts_returns_zeros(self, rng):
        np.testing.assert_allclose(synthetic.regime_shifts(50, 0, 1.0, rng), np.zeros(50))

    def test_shifts_are_piecewise_constant(self, rng):
        series = synthetic.regime_shifts(500, 4, 1.0, rng)
        changes = np.count_nonzero(np.diff(series))
        assert 1 <= changes <= 4

    def test_rush_hour_profile_peaks_on_weekdays(self):
        samples_per_day = 24
        weekend = np.zeros(24, dtype=bool)
        profile = synthetic.rush_hour_profile(24, samples_per_day, weekend)
        assert profile[8] > profile[3]      # morning rush > night
        assert profile[18] > profile[12]    # evening rush > midday

    def test_rush_hour_weekend_flatter(self):
        samples_per_day = 24
        weekday = synthetic.rush_hour_profile(24, samples_per_day, np.zeros(24, dtype=bool))
        weekend = synthetic.rush_hour_profile(24, samples_per_day, np.ones(24, dtype=bool))
        assert weekend.max() < weekday.max()

    def test_mixture_series_shape_and_determinism(self):
        a = synthetic.mixture_series(500, 24, np.random.default_rng(3))
        b = synthetic.mixture_series(500, 24, np.random.default_rng(3))
        assert a.shape == (500,)
        np.testing.assert_allclose(a, b)
