"""Tests for patch division, trend sequences and instance normalisation."""

import numpy as np
import pytest

from repro.core import LastValueNormalizer, patchify, trend_sequences, unpatchify_forecast
from repro.nn import Tensor


class TestPatchify:
    def test_shape(self, rng):
        x = Tensor(rng.standard_normal((4, 48, 3)))
        patches = patchify(x, patch_length=12)
        assert patches.shape == (12, 4, 12)  # [b*c, n, pl]

    def test_rejects_indivisible_length(self, rng):
        with pytest.raises(ValueError):
            patchify(Tensor(rng.standard_normal((2, 50, 3))), patch_length=12)

    def test_patch_contents_are_contiguous_per_channel(self):
        # channel c of batch b contains values 1000*b + 10*c + t
        batch, length, channels = 2, 8, 3
        data = np.zeros((batch, length, channels), dtype=np.float32)
        for b in range(batch):
            for c in range(channels):
                data[b, :, c] = 1000 * b + 10 * c + np.arange(length)
        patches = patchify(Tensor(data), patch_length=4)
        # row 0 = (batch 0, channel 0): patches [0..3], [4..7]
        np.testing.assert_allclose(patches.data[0, 0], [0, 1, 2, 3])
        np.testing.assert_allclose(patches.data[0, 1], [4, 5, 6, 7])
        # row 1 = (batch 0, channel 1)
        np.testing.assert_allclose(patches.data[1, 0], [10, 11, 12, 13])
        # last row = (batch 1, channel 2)
        np.testing.assert_allclose(patches.data[-1, 1], 1000 + 20 + np.arange(4, 8))

    def test_trend_sequences_are_transposed_patches(self, rng):
        x = Tensor(rng.standard_normal((2, 24, 1)))
        patches = patchify(x, 6)
        trends = trend_sequences(patches)
        assert trends.shape == (2, 6, 4)
        # trend k holds the k-th element of every patch
        np.testing.assert_allclose(trends.data[0, 2], patches.data[0, :, 2])


class TestUnpatchify:
    def test_roundtrip_with_patchify(self, rng):
        x = rng.standard_normal((3, 24, 2)).astype(np.float32)
        patches = patchify(Tensor(x), 6)
        restored = unpatchify_forecast(patches, batch=3, channels=2, horizon=24)
        np.testing.assert_allclose(restored.data, x, rtol=1e-6)

    def test_truncates_to_horizon(self, rng):
        patches = Tensor(rng.standard_normal((6, 2, 12)))  # b*c=6, nt=2, pl=12
        out = unpatchify_forecast(patches, batch=3, channels=2, horizon=20)
        assert out.shape == (3, 20, 2)


class TestLastValueNormalizer:
    def test_normalized_series_ends_at_zero(self, rng):
        x = Tensor(rng.standard_normal((4, 20, 3)))
        normalized, last = LastValueNormalizer.normalize(x)
        np.testing.assert_allclose(normalized.data[:, -1, :], np.zeros((4, 3)), atol=1e-6)
        assert last.shape == (4, 1, 3)

    def test_denormalize_inverts(self, rng):
        x = Tensor(rng.standard_normal((4, 20, 3)))
        normalized, last = LastValueNormalizer.normalize(x)
        restored = LastValueNormalizer.denormalize(normalized, last)
        np.testing.assert_allclose(restored.data, x.data, rtol=1e-5, atol=1e-6)

    def test_shift_invariance_of_normalized_values(self, rng):
        x = rng.standard_normal((2, 10, 1)).astype(np.float32)
        shifted = x + 100.0
        normalized_a, _ = LastValueNormalizer.normalize(Tensor(x))
        normalized_b, _ = LastValueNormalizer.normalize(Tensor(shifted))
        np.testing.assert_allclose(normalized_a.data, normalized_b.data, atol=1e-4)
