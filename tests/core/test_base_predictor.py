"""Tests for the Base Predictor backbone."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import BasePredictor
from repro.nn import AdamW, SmoothL1Loss, Tensor


@pytest.fixture
def backbone_config(no_covariate_config):
    return no_covariate_config


class TestShapes:
    def test_forecast_shape(self, backbone_config, rng):
        model = BasePredictor(backbone_config, rng=rng)
        x = Tensor(rng.standard_normal((5, 48, 3)))
        assert model(x).shape == (5, 12, 3)

    def test_horizon_not_multiple_of_patch(self, rng):
        config = ModelConfig(
            input_length=48, horizon=10, n_channels=2, patch_length=12, hidden_dim=16, dropout=0.0
        )
        model = BasePredictor(config, rng=rng)
        assert model(Tensor(rng.standard_normal((3, 48, 2)))).shape == (3, 10, 2)

    def test_input_validation(self, backbone_config, rng):
        model = BasePredictor(backbone_config, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((5, 47, 3))))
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((5, 48, 4))))
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((5, 48))))


class TestChannelIndependence:
    def test_channel_permutation_equivariance(self, backbone_config, rng):
        """Channel-independent weights: permuting channels permutes forecasts."""
        model = BasePredictor(backbone_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, 48, 3)).astype(np.float32)
        permutation = [2, 0, 1]
        out_original = model(Tensor(x)).data
        out_permuted = model(Tensor(x[:, :, permutation])).data
        np.testing.assert_allclose(out_permuted, out_original[:, :, permutation], rtol=1e-4, atol=1e-5)

    def test_level_shift_equivariance(self, backbone_config, rng):
        """Instance normalisation: adding a constant shifts the forecast by it."""
        model = BasePredictor(backbone_config, rng=rng)
        model.eval()
        x = rng.standard_normal((2, 48, 3)).astype(np.float32)
        base = model(Tensor(x)).data
        shifted = model(Tensor(x + 50.0)).data
        np.testing.assert_allclose(shifted, base + 50.0, rtol=1e-3, atol=1e-2)


class TestAblationFlags:
    def test_ffn_variant_has_more_parameters(self, backbone_config, rng):
        base = BasePredictor(backbone_config, rng=rng).num_parameters()
        with_ffn = BasePredictor(backbone_config, use_ffn=True, rng=rng).num_parameters()
        with_ln = BasePredictor(backbone_config, use_layer_norm=True, rng=rng).num_parameters()
        assert with_ffn > base
        assert with_ln == base + 2 * backbone_config.hidden_dim

    def test_all_variants_forward(self, backbone_config, rng):
        x = Tensor(rng.standard_normal((2, 48, 3)))
        for flags in (
            {"use_cross_patch": False},
            {"use_inter_patch_attention": False},
            {"use_cross_patch": False, "use_inter_patch_attention": False},
            {"use_layer_norm": True},
            {"use_ffn": True},
            {"use_layer_norm": True, "use_ffn": True},
        ):
            model = BasePredictor(backbone_config, rng=rng, **flags)
            assert model(x).shape == (2, 12, 3)

    def test_linear_substitutes_have_fewer_parameters_than_attention(self, backbone_config, rng):
        full = BasePredictor(backbone_config, rng=rng)
        neither = BasePredictor(
            backbone_config, use_cross_patch=False, use_inter_patch_attention=False, rng=rng
        )
        assert full.num_parameters() != neither.num_parameters()


class TestTrainability:
    def test_loss_decreases_on_learnable_signal(self, backbone_config, rng):
        """The backbone should fit a simple periodic continuation task."""
        model = BasePredictor(backbone_config, rng=rng)
        t = np.arange(48 + 12)
        windows = []
        for start in rng.integers(0, 100, size=64):
            series = np.sin(2 * np.pi * (t + start) / 12.0)
            windows.append(series)
        windows = np.asarray(windows, dtype=np.float32)[:, :, None]
        x = np.repeat(windows[:, :48], 3, axis=2)
        y = np.repeat(windows[:, 48:], 3, axis=2)

        optimizer = AdamW(model.parameters(), lr=5e-3)
        loss_fn = SmoothL1Loss()
        first, last = None, None
        for _ in range(30):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.5

    def test_gradients_reach_every_parameter(self, backbone_config, rng):
        model = BasePredictor(backbone_config, rng=rng)
        x = Tensor(rng.standard_normal((4, 48, 3)))
        model(x).sum().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"
