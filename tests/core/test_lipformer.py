"""Tests for the full LiPFormer model and its variants / transplant wrapper."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.core.transplant import CovariateEnrichedModel
from repro.core.variants import ABLATION_VARIANTS
from repro.baselines import DLinear
from repro.nn import Tensor


def _covariate_batch(config: ModelConfig, rng, batch=4):
    x = rng.standard_normal((batch, config.input_length, config.n_channels)).astype(np.float32)
    numerical = rng.standard_normal((batch, config.horizon, config.covariate_numerical_dim)).astype(np.float32)
    categorical = np.stack(
        [
            rng.integers(0, cardinality, size=(batch, config.horizon))
            for cardinality in config.covariate_categorical_cardinalities
        ],
        axis=-1,
    )
    return x, numerical, categorical


class TestConfigValidation:
    def test_input_length_must_be_divisible_by_patch(self):
        with pytest.raises(ValueError):
            ModelConfig(input_length=100, horizon=24, patch_length=48)

    def test_invalid_dropout(self):
        with pytest.raises(ValueError):
            ModelConfig(dropout=1.5)

    def test_derived_quantities(self, small_config):
        assert small_config.n_patches == 4
        assert small_config.n_target_patches == 1
        assert small_config.has_covariates

    def test_with_overrides(self, small_config):
        bigger = small_config.with_overrides(hidden_dim=64)
        assert bigger.hidden_dim == 64
        assert small_config.hidden_dim == 16


class TestForward:
    def test_forecast_shape_with_covariates(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        x, numerical, categorical = _covariate_batch(small_config, rng)
        out = model(Tensor(x), numerical, categorical)
        assert out.shape == (4, 12, 3)

    def test_forecast_without_covariates_falls_back_to_base(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        model.eval()
        x, _, _ = _covariate_batch(small_config, rng)
        base = model.base_predictor(Tensor(x)).data
        out = model(Tensor(x)).data
        np.testing.assert_allclose(out, base, rtol=1e-6)

    def test_covariate_guidance_starts_neutral_then_learns(self, small_config, rng):
        """The Vector Mapping is zero-initialised (guidance off), but gradients
        reach it and a non-zero mapping changes the forecast."""
        model = LiPFormer(small_config, rng=rng)
        model.eval()
        x, numerical, categorical = _covariate_batch(small_config, rng)
        without = model(Tensor(x)).data
        neutral = model(Tensor(x), numerical, categorical).data
        np.testing.assert_allclose(neutral, without, atol=1e-6)
        # Gradients must reach the Vector Mapping so it can be learned.
        model.train()
        model(Tensor(x), numerical, categorical).sum().backward()
        assert model.vector_mapping.weight.grad is not None
        # A non-zero mapping injects guidance.
        model.eval()
        model.vector_mapping.weight.data[...] = 0.1
        guided = model(Tensor(x), numerical, categorical).data
        assert not np.allclose(guided, without)

    def test_guidance_is_identical_across_channels(self, small_config, rng):
        """Figure 1: the covariate vector is repeated across channels."""
        model = LiPFormer(small_config, rng=rng)
        model.eval()
        model.vector_mapping.weight.data[...] = 0.1  # enable guidance
        x, numerical, categorical = _covariate_batch(small_config, rng)
        base = model.base_predictor(Tensor(x)).data
        guided = model(Tensor(x), numerical, categorical).data
        delta = guided - base
        assert np.abs(delta).max() > 0
        np.testing.assert_allclose(delta[..., 0], delta[..., 1], rtol=1e-4, atol=1e-5)

    def test_model_without_guidance_flag(self, small_config, rng):
        model = LiPFormer(small_config, use_covariate_guidance=False, rng=rng)
        x, numerical, categorical = _covariate_batch(small_config, rng)
        assert model.covariate_encoder is None
        assert model(Tensor(x), numerical, categorical).shape == (4, 12, 3)

    def test_predict_returns_numpy(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        x, numerical, categorical = _covariate_batch(small_config, rng)
        out = model.predict(x, numerical, categorical)
        assert isinstance(out, np.ndarray)
        assert out.shape == (4, 12, 3)

    def test_predict_leaves_training_mode_untouched(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        x, numerical, categorical = _covariate_batch(small_config, rng)
        model.train()
        model.predict(x, numerical, categorical)
        assert model.training


class TestPretrainingSupport:
    def test_build_dual_encoder_shares_covariate_encoder(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        dual = model.build_dual_encoder()
        assert dual.covariate_encoder is model.covariate_encoder

    def test_build_dual_encoder_requires_guidance(self, small_config, rng):
        model = LiPFormer(small_config, use_covariate_guidance=False, rng=rng)
        with pytest.raises(RuntimeError):
            model.build_dual_encoder()

    def test_freeze_excludes_covariate_encoder_parameters(self, small_config, rng):
        model = LiPFormer(small_config, rng=rng)
        all_parameters = len(model.optimizer_parameters())
        model.freeze_covariate_encoder()
        frozen_parameters = len(model.optimizer_parameters())
        assert frozen_parameters < all_parameters
        assert model.covariate_encoder_frozen

    def test_without_covariates_config(self, no_covariate_config, rng):
        model = LiPFormer(no_covariate_config, rng=rng)
        assert model.covariate_encoder is None
        assert not model.use_covariate_guidance


class TestVariants:
    def test_all_named_variants_forward(self, small_config, rng):
        x, numerical, categorical = _covariate_batch(small_config, rng)
        for name, factory in ABLATION_VARIANTS.items():
            model = factory(small_config, rng=np.random.default_rng(0))
            out = model(Tensor(x), numerical, categorical)
            assert out.shape == (4, 12, 3), name

    def test_ffn_variant_is_heavier(self, small_config):
        base = ABLATION_VARIANTS["LiPFormer"](small_config).num_parameters()
        ffn = ABLATION_VARIANTS["LiPFormer+FFNs"](small_config).num_parameters()
        both = ABLATION_VARIANTS["LiPFormer+FFNs+LN"](small_config).num_parameters()
        assert ffn > base
        assert both > ffn


class TestCovariateEnrichedModel:
    def test_requires_covariates_in_config(self, no_covariate_config, rng):
        with pytest.raises(ValueError):
            CovariateEnrichedModel(DLinear(no_covariate_config, rng=rng))

    def test_wraps_any_model(self, small_config, rng):
        wrapped = CovariateEnrichedModel(DLinear(small_config, rng=rng), small_config, rng=rng)
        x, numerical, categorical = _covariate_batch(small_config, rng)
        assert wrapped(Tensor(x), numerical, categorical).shape == (4, 12, 3)

    def test_guidance_changes_base_output_once_learned(self, small_config, rng):
        base = DLinear(small_config, rng=rng)
        wrapped = CovariateEnrichedModel(base, small_config, rng=rng)
        wrapped.eval()
        x, numerical, categorical = _covariate_batch(small_config, rng)
        plain = base(Tensor(x)).data
        # Zero-initialised mapping: wrapper starts identical to the base model.
        np.testing.assert_allclose(wrapped(Tensor(x), numerical, categorical).data, plain, atol=1e-6)
        wrapped.vector_mapping.weight.data[...] = 0.1
        enriched = wrapped(Tensor(x), numerical, categorical).data
        assert not np.allclose(plain, enriched)

    def test_freeze_excludes_encoder(self, small_config, rng):
        wrapped = CovariateEnrichedModel(DLinear(small_config, rng=rng), small_config, rng=rng)
        before = len(wrapped.optimizer_parameters())
        wrapped.freeze_covariate_encoder()
        assert len(wrapped.optimizer_parameters()) < before

    def test_dual_encoder_shares_encoder(self, small_config, rng):
        wrapped = CovariateEnrichedModel(DLinear(small_config, rng=rng), small_config, rng=rng)
        assert wrapped.build_dual_encoder().covariate_encoder is wrapped.covariate_encoder
