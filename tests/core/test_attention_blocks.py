"""Tests for Cross-Patch and Inter-Patch attention blocks."""

import numpy as np
import pytest

from repro.core import CrossPatchAttention, InterPatchAttention
from repro.nn import Tensor


class TestCrossPatchAttention:
    def test_output_shape_preserved(self, rng):
        block = CrossPatchAttention(n_patches=4, patch_length=12, rng=rng)
        x = Tensor(rng.standard_normal((6, 4, 12)))
        assert block(x).shape == (6, 4, 12)

    def test_residual_connection_present(self, rng):
        block = CrossPatchAttention(n_patches=4, patch_length=12, rng=rng)
        block.eval()
        x = Tensor(rng.standard_normal((2, 4, 12)))
        out = block(x)
        # The block output is attention + input; removing the input leaves
        # the (bounded) attention component, so out - x must differ from out.
        assert not np.allclose(out.data, (out - x).data)

    def test_wrong_shape_raises(self, rng):
        block = CrossPatchAttention(n_patches=4, patch_length=12, rng=rng)
        with pytest.raises(ValueError):
            block(Tensor(rng.standard_normal((2, 5, 12))))

    def test_parameters_scale_with_n_patches_not_patch_length(self, rng):
        small = CrossPatchAttention(n_patches=4, patch_length=64, rng=rng)
        large = CrossPatchAttention(n_patches=16, patch_length=64, rng=rng)
        assert large.num_parameters() > small.num_parameters()
        # patch length does not change the Q/K/V projections
        other = CrossPatchAttention(n_patches=4, patch_length=128, rng=rng)
        assert other.num_parameters() == small.num_parameters()

    def test_gradients_flow(self, rng):
        block = CrossPatchAttention(n_patches=3, patch_length=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())


class TestInterPatchAttention:
    def test_output_shape_preserved(self, rng):
        block = InterPatchAttention(hidden_dim=16, attention_dim=8, rng=rng)
        x = Tensor(rng.standard_normal((6, 4, 16)))
        assert block(x).shape == (6, 4, 16)

    def test_wrong_hidden_dim_raises(self, rng):
        block = InterPatchAttention(hidden_dim=16, attention_dim=8, rng=rng)
        with pytest.raises(ValueError):
            block(Tensor(rng.standard_normal((2, 4, 12))))

    def test_parameter_budget_is_linear_in_hidden_dim(self, rng):
        # The paper claims O(hd * pl) parameters rather than O(hd^2).
        attention_dim = 8
        small = InterPatchAttention(hidden_dim=32, attention_dim=attention_dim, rng=rng)
        large = InterPatchAttention(hidden_dim=64, attention_dim=attention_dim, rng=rng)
        ratio = large.num_parameters() / small.num_parameters()
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_far_fewer_parameters_than_full_attention(self, rng):
        hidden = 128
        block = InterPatchAttention(hidden_dim=hidden, attention_dim=16, rng=rng)
        full_attention_parameters = 3 * hidden * hidden
        assert block.num_parameters() < full_attention_parameters / 3

    def test_gradients_flow(self, rng):
        block = InterPatchAttention(hidden_dim=12, attention_dim=6, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 12)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())
