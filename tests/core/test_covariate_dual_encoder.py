"""Tests for the Covariate Encoder, Target Encoder and dual-encoder pre-training."""

import numpy as np
import pytest

from repro.core import CovariateEncoder, DualEncoder, TargetEncoder
from repro.nn import Adam


def _batch(rng, batch=6, horizon=12, numerical=3, categorical=(4, 2), channels=2):
    numerical_covariates = rng.standard_normal((batch, horizon, numerical)).astype(np.float32)
    categorical_covariates = np.stack(
        [rng.integers(0, cardinality, size=(batch, horizon)) for cardinality in categorical], axis=-1
    )
    targets = rng.standard_normal((batch, horizon, channels)).astype(np.float32)
    return targets, numerical_covariates, categorical_covariates


class TestCovariateEncoder:
    def test_output_shape(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=3, categorical_cardinalities=[4, 2], rng=rng)
        _, numerical, categorical = _batch(rng)
        assert encoder(numerical, categorical).shape == (6, 12)

    def test_numerical_only(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=3, categorical_cardinalities=[], rng=rng)
        _, numerical, _ = _batch(rng)
        assert encoder(numerical, None).shape == (6, 12)

    def test_categorical_only(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=0, categorical_cardinalities=[4, 2], rng=rng)
        _, _, categorical = _batch(rng)
        assert encoder(None, categorical).shape == (6, 12)

    def test_requires_at_least_one_channel(self, rng):
        with pytest.raises(ValueError):
            CovariateEncoder(horizon=12, numerical_dim=0, categorical_cardinalities=[], rng=rng)

    def test_missing_numerical_raises(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=3, categorical_cardinalities=[4], rng=rng)
        _, _, categorical = _batch(rng, categorical=(4,))
        with pytest.raises(ValueError):
            encoder(None, categorical)

    def test_wrong_numerical_width_raises(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=5, categorical_cardinalities=[], rng=rng)
        _, numerical, _ = _batch(rng)
        with pytest.raises(ValueError):
            encoder(numerical, None)

    def test_wrong_horizon_raises(self, rng):
        encoder = CovariateEncoder(horizon=24, numerical_dim=3, categorical_cardinalities=[4, 2], rng=rng)
        _, numerical, categorical = _batch(rng, horizon=12)
        with pytest.raises(ValueError):
            encoder(numerical, categorical)

    def test_wrong_categorical_width_raises(self, rng):
        encoder = CovariateEncoder(horizon=12, numerical_dim=3, categorical_cardinalities=[4], rng=rng)
        _, numerical, categorical = _batch(rng)
        with pytest.raises(ValueError):
            encoder(numerical, categorical)


class TestTargetEncoder:
    def test_output_shape(self, rng):
        encoder = TargetEncoder(horizon=12, n_channels=2, rng=rng)
        targets, _, _ = _batch(rng)
        assert encoder(targets).shape == (6, 12)

    def test_wrong_horizon_raises(self, rng):
        encoder = TargetEncoder(horizon=24, n_channels=2, rng=rng)
        targets, _, _ = _batch(rng, horizon=12)
        with pytest.raises(ValueError):
            encoder(targets)


class TestDualEncoder:
    def _dual_encoder(self, rng):
        covariate_encoder = CovariateEncoder(
            horizon=12, numerical_dim=3, categorical_cardinalities=[4, 2], hidden_dim=16, rng=rng
        )
        target_encoder = TargetEncoder(horizon=12, n_channels=2, hidden_dim=16, rng=rng)
        return DualEncoder(covariate_encoder, target_encoder)

    def test_loss_is_scalar_and_positive(self, rng):
        dual = self._dual_encoder(rng)
        targets, numerical, categorical = _batch(rng)
        loss = dual(targets, numerical, categorical)
        assert loss.size == 1
        assert loss.item() > 0

    def test_logits_matrix_shape(self, rng):
        dual = self._dual_encoder(rng)
        targets, numerical, categorical = _batch(rng, batch=5)
        assert dual.logits_matrix(targets, numerical, categorical).shape == (5, 5)

    def test_contrastive_training_brightens_diagonal(self, rng):
        """Pre-training on correlated pairs should make the diagonal dominant."""
        dual = self._dual_encoder(rng)
        optimizer = Adam(dual.parameters(), lr=5e-3)
        batch = 16
        for _ in range(60):
            # Targets are a (noisy) linear readout of the numerical covariates,
            # so matched pairs are genuinely more similar than mismatched ones.
            numerical = rng.standard_normal((batch, 12, 3)).astype(np.float32)
            categorical = np.stack(
                [rng.integers(0, 4, size=(batch, 12)), rng.integers(0, 2, size=(batch, 12))], axis=-1
            )
            targets = np.repeat(numerical.mean(axis=2, keepdims=True), 2, axis=2).astype(np.float32)
            targets += 0.05 * rng.standard_normal(targets.shape).astype(np.float32)
            optimizer.zero_grad()
            loss = dual(targets, numerical, categorical)
            loss.backward()
            optimizer.step()

        numerical = rng.standard_normal((batch, 12, 3)).astype(np.float32)
        categorical = np.stack(
            [rng.integers(0, 4, size=(batch, 12)), rng.integers(0, 2, size=(batch, 12))], axis=-1
        )
        targets = np.repeat(numerical.mean(axis=2, keepdims=True), 2, axis=2).astype(np.float32)
        logits = dual.logits_matrix(targets, numerical, categorical)
        diagonal = np.diag(logits).mean()
        off_diagonal = logits[~np.eye(batch, dtype=bool)].mean()
        assert diagonal > off_diagonal
