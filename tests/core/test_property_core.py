"""Property-based tests (hypothesis) for the core patching / normalisation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import LastValueNormalizer, patchify, trend_sequences, unpatchify_forecast
from repro.data import MultivariateTimeSeries, SlidingWindowDataset, make_timestamps
from repro.nn import Tensor

_settings = settings(max_examples=25, deadline=None)


class TestPatchingProperties:
    @_settings
    @given(
        batch=st.integers(1, 3),
        n_patches=st.integers(1, 6),
        patch_length=st.integers(1, 8),
        channels=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_patchify_unpatchify_roundtrip(self, batch, n_patches, patch_length, channels, seed):
        """Splitting into patches and reassembling is the identity."""
        length = n_patches * patch_length
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, length, channels)).astype(np.float32)
        patches = patchify(Tensor(x), patch_length)
        restored = unpatchify_forecast(patches, batch, channels, horizon=length)
        np.testing.assert_allclose(restored.data, x, rtol=1e-6, atol=1e-6)

    @_settings
    @given(
        n_patches=st.integers(1, 6),
        patch_length=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    def test_trend_sequences_are_patch_transpose(self, n_patches, patch_length, seed):
        """Trend sequence k is exactly the k-th position of every patch."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, n_patches * patch_length, 1)).astype(np.float32)
        patches = patchify(Tensor(x), patch_length)
        trends = trend_sequences(patches)
        for position in range(patch_length):
            np.testing.assert_allclose(trends.data[0, position], patches.data[0, :, position])

    @_settings
    @given(
        batch=st.integers(1, 4),
        length=st.integers(2, 20),
        channels=st.integers(1, 4),
        offset=st.floats(min_value=-100, max_value=100, allow_nan=False),
        seed=st.integers(0, 10_000),
    )
    def test_last_value_normalisation_roundtrip_and_shift_invariance(
        self, batch, length, channels, offset, seed
    ):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, length, channels)).astype(np.float32)
        normalized, last = LastValueNormalizer.normalize(Tensor(x))
        restored = LastValueNormalizer.denormalize(normalized, last)
        np.testing.assert_allclose(restored.data, x, rtol=1e-4, atol=1e-4)
        shifted_normalized, _ = LastValueNormalizer.normalize(Tensor(x + np.float32(offset)))
        np.testing.assert_allclose(shifted_normalized.data, normalized.data, atol=1e-2)


class TestWindowProperties:
    @_settings
    @given(
        length=st.integers(40, 120),
        input_length=st.integers(4, 16),
        horizon=st.integers(1, 8),
        stride=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_every_window_matches_the_underlying_series(
        self, length, input_length, horizon, stride, seed
    ):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((length, 2)).astype(np.float32)
        series = MultivariateTimeSeries(values=values, timestamps=make_timestamps(length, 60))
        dataset = SlidingWindowDataset(series, input_length, horizon, stride=stride)
        assert len(dataset) >= 1
        for index in (0, len(dataset) // 2, len(dataset) - 1):
            sample = dataset[index]
            start = index * stride
            np.testing.assert_allclose(sample.x, values[start : start + input_length])
            np.testing.assert_allclose(
                sample.y, values[start + input_length : start + input_length + horizon]
            )
            # windows never run past the end of the series
            assert start + input_length + horizon <= length
