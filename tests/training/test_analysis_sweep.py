"""Tests for result analysis utilities and the hyper-parameter grid search."""

import numpy as np
import pytest

from repro.baselines import DLinear
from repro.config import ModelConfig, TrainingConfig
from repro.training import (
    ResultsTable,
    average_improvement,
    grid_search,
    pairwise_comparison,
    per_step_errors,
    rank_models,
    win_counts,
)


def _table():
    """Two datasets x two models, model B better on D1, model A on D2."""
    table = ResultsTable()
    table.add_row(model="A", dataset="D1", horizon=24, mse=0.5)
    table.add_row(model="B", dataset="D1", horizon=24, mse=0.4)
    table.add_row(model="A", dataset="D2", horizon=24, mse=0.2)
    table.add_row(model="B", dataset="D2", horizon=24, mse=0.3)
    return table


class TestPerStepErrors:
    def test_shapes_and_values(self, rng):
        prediction = rng.standard_normal((10, 6, 3))
        target = prediction.copy()
        target[:, -1, :] += 1.0  # error concentrated at the last step
        profile = per_step_errors(prediction, target)
        assert profile["mse"].shape == (6,)
        assert profile["mae"].shape == (6,)
        assert profile["mse"][-1] == pytest.approx(1.0)
        np.testing.assert_allclose(profile["mse"][:-1], np.zeros(5), atol=1e-12)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            per_step_errors(rng.standard_normal((4, 6, 2)), rng.standard_normal((4, 5, 2)))
        with pytest.raises(ValueError):
            per_step_errors(rng.standard_normal((4, 6)), rng.standard_normal((4, 6)))


class TestTableAnalysis:
    def test_win_counts(self):
        counts = win_counts(_table(), top_k=2)
        assert counts["A"] == [1, 1]
        assert counts["B"] == [1, 1]

    def test_win_counts_validation(self):
        with pytest.raises(ValueError):
            win_counts(_table(), top_k=0)

    def test_average_improvement_sign(self):
        # B improves on D1 by 20% but is worse on D2 by 50% -> average -15%.
        value = average_improvement(_table(), baseline="A", candidate="B")
        assert value == pytest.approx((20.0 - 50.0) / 2)

    def test_average_improvement_requires_overlap(self):
        table = ResultsTable()
        table.add_row(model="A", dataset="D1", horizon=24, mse=0.5)
        with pytest.raises(ValueError):
            average_improvement(table, baseline="A", candidate="B")

    def test_rank_models(self):
        ranks = rank_models(_table())
        assert ranks["A"] == pytest.approx(1.5)
        assert ranks["B"] == pytest.approx(1.5)

    def test_pairwise_comparison(self):
        comparison = pairwise_comparison(_table(), baseline="A", candidate="B")
        assert comparison.n_cells == 2
        assert comparison.candidate_wins == 1
        assert comparison.baseline_wins == 1
        assert comparison.win_rate == pytest.approx(0.5)
        assert comparison.mean_difference == pytest.approx((0.1 - 0.1) / 2, abs=1e-9)


class TestGridSearch:
    def test_grid_search_finds_best_combination(self, etth1_smoke_data):
        base_config = ModelConfig(
            input_length=etth1_smoke_data.input_length,
            horizon=etth1_smoke_data.horizon,
            n_channels=etth1_smoke_data.n_channels,
            patch_length=12,
            hidden_dim=8,
            dropout=0.0,
        )
        sweep = grid_search(
            model_factory=lambda config: DLinear(config),
            data=etth1_smoke_data,
            base_model_config=base_config,
            model_grid={"hidden_dim": [8, 16]},
            training_grid={"learning_rate": [1e-3, 5e-3]},
            base_training_config=TrainingConfig(epochs=1, batch_size=64),
        )
        assert len(sweep) == 4
        assert len(sweep.table) == 4
        assert sweep.best_result is not None
        assert set(sweep.best_overrides) == {"hidden_dim", "learning_rate"}
        best_mse = min(result.mse for result in sweep.results)
        assert sweep.best_result.mse == pytest.approx(best_mse)

    def test_grid_search_metric_validation(self, etth1_smoke_data):
        base_config = ModelConfig(
            input_length=etth1_smoke_data.input_length,
            horizon=etth1_smoke_data.horizon,
            n_channels=etth1_smoke_data.n_channels,
            patch_length=12,
            hidden_dim=8,
            dropout=0.0,
        )
        with pytest.raises(ValueError):
            grid_search(
                model_factory=lambda config: DLinear(config),
                data=etth1_smoke_data,
                base_model_config=base_config,
                metric="rmse",
            )
