"""Regression tests: evaluate() mode handling and freeze-after-optimizer.

Covers two bugs found while building the serving layer:

* ``Trainer.evaluate`` used to unconditionally call ``model.train()`` after
  evaluation, clobbering eval mode for standalone callers (``Trainer.test``);
* ``LiPFormer.freeze_covariate_encoder()`` called after ``Trainer.__init__``
  had no effect because AdamW had already captured the pre-freeze parameter
  list.
"""

import numpy as np

from repro.baselines import DLinear
from repro.config import ModelConfig, TrainingConfig
from repro.core import LiPFormer
from repro.training import Trainer, pretrain_covariate_encoder


def _config_for(data, hidden=16):
    return ModelConfig(
        input_length=data.input_length,
        horizon=data.horizon,
        n_channels=data.n_channels,
        patch_length=12,
        hidden_dim=hidden,
        dropout=0.0,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=2,
        covariate_hidden_dim=8,
    )


class TestEvaluatePreservesMode:
    def test_standalone_evaluate_keeps_eval_mode(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        _, val_loader, _ = etth1_smoke_data.loaders(32, shuffle_train=False)
        model.eval()
        trainer.evaluate(val_loader)
        assert not model.training, "evaluate() must not clobber eval mode"

    def test_evaluate_restores_train_mode(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        _, val_loader, _ = etth1_smoke_data.loaders(32, shuffle_train=False)
        model.train()
        trainer.evaluate(val_loader)
        assert model.training, "evaluate() must restore the prior training flag"

    def test_evaluate_restores_submodule_modes(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        _, val_loader, _ = etth1_smoke_data.loaders(32, shuffle_train=False)
        model.eval()
        trainer.evaluate(val_loader)
        assert all(not m.training for _, m in model.named_modules())

    def test_test_leaves_model_in_prior_mode(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        model.eval()
        trainer.test(etth1_smoke_data)
        assert not model.training


class TestFreezeAfterOptimizer:
    def test_freeze_after_trainer_construction_is_honoured(self, cycle_smoke_data, training_config):
        """The footgun: trainer built first, encoder frozen afterwards."""
        model = LiPFormer(_config_for(cycle_smoke_data))
        trainer = Trainer(model, training_config)           # AdamW captures params now
        model.freeze_covariate_encoder()                    # ... then the freeze lands
        before = {k: v.copy() for k, v in model.covariate_encoder.state_dict().items()}
        trainer.fit(cycle_smoke_data)
        after = model.covariate_encoder.state_dict()
        for name in before:
            np.testing.assert_array_equal(
                before[name], after[name],
                err_msg=f"frozen covariate-encoder weight {name} changed during fit",
            )

    def test_pretrain_then_fit_keeps_encoder_bit_identical(self, cycle_smoke_data, training_config):
        """The standard two-stage flow, with the trainer built pre-freeze."""
        model = LiPFormer(_config_for(cycle_smoke_data))
        trainer = Trainer(model, training_config)
        pretrain_covariate_encoder(model, cycle_smoke_data, training_config)
        frozen = {k: v.copy() for k, v in model.covariate_encoder.state_dict().items()}
        trainer.fit(cycle_smoke_data)
        for name, value in model.covariate_encoder.state_dict().items():
            np.testing.assert_array_equal(frozen[name], value)

    def test_unfrozen_encoder_still_trains(self, cycle_smoke_data, training_config):
        """Sanity: without the freeze, the encoder does receive updates."""
        model = LiPFormer(_config_for(cycle_smoke_data))
        trainer = Trainer(model, training_config)
        before = {k: v.copy() for k, v in model.covariate_encoder.state_dict().items()}
        trainer.fit(cycle_smoke_data)
        after = model.covariate_encoder.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_optimizer_state_pruned_on_refresh(self, cycle_smoke_data, training_config):
        model = LiPFormer(_config_for(cycle_smoke_data))
        trainer = Trainer(model, training_config)
        trainer.fit(cycle_smoke_data)                       # builds Adam moments
        model.freeze_covariate_encoder()
        trainer._refresh_optimizer_parameters()
        frozen_ids = {id(p) for p in model.covariate_encoder.parameters()}
        assert frozen_ids.isdisjoint({id(p) for p in trainer.optimizer.parameters})
        assert frozen_ids.isdisjoint(trainer.optimizer._m)
        assert frozen_ids.isdisjoint(trainer.optimizer._v)
