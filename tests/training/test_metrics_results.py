"""Tests for forecast metrics, early stopping and the results table."""

import os

import numpy as np
import pytest

from repro.training import EarlyStopping, ResultsTable, evaluate_forecast, mae, mape, mse, rmse


class TestMetrics:
    def test_mse_known_value(self):
        assert mse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_mae_known_value(self):
        assert mae(np.array([1.0, -2.0]), np.array([0.0, 0.0])) == pytest.approx(1.5)

    def test_rmse_is_sqrt_of_mse(self, rng):
        prediction, target = rng.standard_normal(50), rng.standard_normal(50)
        assert rmse(prediction, target) == pytest.approx(np.sqrt(mse(prediction, target)))

    def test_mape(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(0.1, rel=1e-3)

    def test_perfect_prediction(self, rng):
        x = rng.standard_normal((4, 5))
        assert mse(x, x) == 0.0
        assert mae(x, x) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_evaluate_forecast_keys(self, rng):
        metrics = evaluate_forecast(rng.standard_normal((2, 3)), rng.standard_normal((2, 3)))
        assert set(metrics) == {"mse", "mae", "rmse"}

    def test_metrics_are_scale_sensitive(self, rng):
        target = rng.standard_normal(100)
        close = target + 0.01
        far = target + 1.0
        assert mse(close, target) < mse(far, target)
        assert mae(close, target) < mae(far, target)


class TestEarlyStopping:
    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=1)
        assert stopper.update(1.0)
        assert not stopper.update(1.5)
        assert stopper.update(0.5)
        assert not stopper.should_stop

    def test_stops_after_patience_exceeded(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(1.0)
        stopper.update(1.1)
        stopper.update(1.2)
        assert stopper.should_stop

    def test_best_state_is_kept(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, state={"w": np.ones(1)})
        stopper.update(2.0, state={"w": np.zeros(1)})
        np.testing.assert_allclose(stopper.best_state["w"], np.ones(1))
        assert stopper.best_score == 1.0

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=-1)

    def test_best_state_survives_caller_mutating_live_arrays(self):
        """Regression: storing the caller's dict by reference let further
        training steps silently corrupt the best-state snapshot."""
        stopper = EarlyStopping(patience=2)
        live = {"w": np.ones(3), "b": np.zeros(2)}
        stopper.update(1.0, state=live)
        live["w"] += 100.0                 # optimizer keeps stepping in place
        live["b"][:] = -1.0
        np.testing.assert_array_equal(stopper.best_state["w"], np.ones(3))
        np.testing.assert_array_equal(stopper.best_state["b"], np.zeros(2))


class TestResultsTable:
    def _table(self):
        table = ResultsTable(title="demo")
        table.add_row(model="A", dataset="D1", mse=0.5, mae=0.4)
        table.add_row(model="B", dataset="D1", mse=0.3, mae=0.35)
        table.add_row(model="A", dataset="D2", mse=0.2, mae=0.3)
        return table

    def test_columns_in_first_seen_order(self):
        assert self._table().columns() == ["model", "dataset", "mse", "mae"]

    def test_filter(self):
        filtered = self._table().filter(model="A")
        assert len(filtered) == 2
        assert all(row["model"] == "A" for row in filtered.rows)

    def test_column_accessor(self):
        assert self._table().column("mse") == [0.5, 0.3, 0.2]

    def test_best_by_groups(self):
        best = self._table().best_by("mse", group_keys=("dataset",))
        assert best[("D1",)]["model"] == "B"
        assert best[("D2",)]["model"] == "A"

    def test_to_text_contains_all_cells(self):
        text = self._table().to_text()
        assert "demo" in text and "0.5000" in text and "D2" in text

    def test_to_text_empty(self):
        assert "(empty)" in ResultsTable(title="empty").to_text()

    def test_csv_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "out", "table.csv")
        self._table().save_csv(path)
        with open(path) as handle:
            content = handle.read()
        assert content.startswith("model,dataset,mse,mae")
        assert content.count("\n") >= 4

    def test_json_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "table.json")
        table = self._table()
        table.save_json(path)
        loaded = ResultsTable.load_json(path)
        assert loaded.title == table.title
        assert loaded.rows == table.rows
