"""Tests for the Trainer, contrastive Pretrainer and experiment runner."""

import numpy as np
import pytest

from repro.baselines import DLinear
from repro.config import ModelConfig, TrainingConfig
from repro.core import LiPFormer
from repro.training import (
    ContrastivePretrainer,
    Trainer,
    pretrain_covariate_encoder,
    run_experiment,
    measure_inference_time,
)


def _config_for(data, hidden=16):
    return ModelConfig(
        input_length=data.input_length,
        horizon=data.horizon,
        n_channels=data.n_channels,
        patch_length=12,
        hidden_dim=hidden,
        dropout=0.0,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=2,
        covariate_hidden_dim=8,
    )


class TestTrainer:
    def test_fit_runs_and_records_history(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        history = trainer.fit(etth1_smoke_data)
        assert history.epochs_run == 1
        assert len(history.train_losses) == 1
        assert history.seconds_per_epoch > 0
        assert np.isfinite(history.best_validation_loss)

    def test_training_improves_over_initialisation(self, etth1_smoke_data):
        config = TrainingConfig(epochs=3, batch_size=64, learning_rate=5e-3, patience=5)
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, config)
        before = trainer.test(etth1_smoke_data)["mse"]
        trainer.fit(etth1_smoke_data)
        after = trainer.test(etth1_smoke_data)["mse"]
        assert after < before

    def test_early_stopping_restores_best_state(self, etth1_smoke_data):
        config = TrainingConfig(epochs=2, batch_size=64, patience=0)
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, config)
        history = trainer.fit(etth1_smoke_data)
        # validation score of the restored model equals the best recorded score
        _, val_loader, _ = etth1_smoke_data.loaders(config.batch_size, shuffle_train=False)
        restored = trainer.evaluate(val_loader)["mse"]
        assert restored == pytest.approx(history.best_validation_loss, rel=0.05)

    def test_evaluate_returns_all_metrics(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        _, val_loader, _ = etth1_smoke_data.loaders(16)
        metrics = trainer.evaluate(val_loader)
        assert set(metrics) == {"mse", "mae", "rmse"}

    def test_learning_rate_decay_schedule(self, etth1_smoke_data):
        config = TrainingConfig(epochs=3, batch_size=64, learning_rate=1e-2, patience=5, lr_decay_gamma=0.5)
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, config)
        assert trainer.scheduler is not None
        trainer.fit(etth1_smoke_data)
        # The scheduler steps once per completed epoch: lr = 1e-2 * 0.5^3.
        assert trainer.optimizer.lr == pytest.approx(1e-2 * 0.5**3, rel=1e-6)

    def test_no_scheduler_when_decay_disabled(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        trainer = Trainer(model, training_config)
        assert trainer.scheduler is None

    def test_covariates_passed_only_to_supporting_models(self, cycle_smoke_data, training_config):
        lipformer = LiPFormer(_config_for(cycle_smoke_data))
        dlinear = DLinear(_config_for(cycle_smoke_data))
        for model in (lipformer, dlinear):
            trainer = Trainer(model, training_config)
            history = trainer.fit(cycle_smoke_data)
            assert history.epochs_run == 1


class TestPretrainer:
    def test_pretraining_reduces_contrastive_loss(self, cycle_smoke_data):
        model = LiPFormer(_config_for(cycle_smoke_data))
        dual_encoder = model.build_dual_encoder()
        pretrainer = ContrastivePretrainer(
            dual_encoder, TrainingConfig(epochs=1, pretrain_epochs=3, batch_size=64)
        )
        history = pretrainer.fit(cycle_smoke_data)
        assert len(history.losses) == 3
        assert history.losses[-1] < history.losses[0]

    def test_pretrain_covariate_encoder_freezes(self, cycle_smoke_data, training_config):
        model = LiPFormer(_config_for(cycle_smoke_data))
        history = pretrain_covariate_encoder(model, cycle_smoke_data, training_config)
        assert model.covariate_encoder_frozen
        assert len(history.losses) == training_config.pretrain_epochs

    def test_pretraining_without_covariates_raises(self, training_config):
        from repro.data import prepare_forecasting_data

        data = prepare_forecasting_data(
            "ETTh1", input_length=48, horizon=12, n_timestamps=800, stride=8, include_covariates=False
        )
        model = LiPFormer(_config_for(data).with_overrides(
            covariate_numerical_dim=1, covariate_categorical_cardinalities=()
        ))
        pretrainer = ContrastivePretrainer(model.build_dual_encoder(), training_config)
        with pytest.raises(ValueError):
            pretrainer.fit(data)


class TestExperimentRunner:
    def test_run_experiment_end_to_end(self, cycle_smoke_data, training_config):
        model = LiPFormer(_config_for(cycle_smoke_data))
        result = run_experiment(
            model, cycle_smoke_data, training_config, model_name="LiPFormer", pretrain=True
        )
        assert result.model_name == "LiPFormer"
        assert result.dataset == "Cycle"
        assert result.pretrained
        assert result.mse > 0 and result.mae > 0
        assert result.parameters == model.num_parameters()
        row = result.as_row()
        assert row["model"] == "LiPFormer"
        assert "macs" not in row

    def test_run_experiment_without_pretraining(self, etth1_smoke_data, training_config):
        model = DLinear(_config_for(etth1_smoke_data))
        result = run_experiment(model, etth1_smoke_data, training_config, model_name="DLinear")
        assert not result.pretrained

    def test_measure_inference_time_positive(self, etth1_smoke_data):
        model = DLinear(_config_for(etth1_smoke_data))
        assert measure_inference_time(model, etth1_smoke_data, batch_size=8, repeats=2) > 0
