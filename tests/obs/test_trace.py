"""Tests for span tracing: nesting, propagation, ring buffer, Chrome export."""

import json
import threading

from repro.obs import (
    TraceRecorder,
    carry_current_span,
    chrome_trace,
    current_span,
    observability,
    span,
    tracing_enabled,
)


def _by_name(spans):
    index = {}
    for item in spans:
        index.setdefault(item.name, []).append(item)
    return index


class TestSpanNesting:
    def test_disabled_tracing_records_nothing(self):
        recorder = TraceRecorder()
        assert not tracing_enabled()
        with span("outer", recorder=recorder):
            assert current_span() is None
            with span("inner", recorder=recorder):
                pass
        assert len(recorder) == 0

    def test_parent_child_ids(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("outer", recorder=recorder) as outer:
                assert current_span() is outer
                with span("inner", recorder=recorder) as inner:
                    assert inner.parent_id == outer.span_id
            assert current_span() is None
        spans = _by_name(recorder.spans())
        assert spans["outer"][0].parent_id is None
        assert spans["inner"][0].parent_id == spans["outer"][0].span_id
        # Children finish (and therefore record) before their parents.
        assert recorder.spans()[0].name == "inner"

    def test_durations_and_containment(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("outer", recorder=recorder):
                with span("inner", recorder=recorder):
                    pass
        spans = _by_name(recorder.spans())
        outer, inner = spans["outer"][0], spans["inner"][0]
        assert outer.duration >= 0 and inner.duration >= 0
        assert outer.start <= inner.start
        assert inner.start + inner.duration <= outer.start + outer.duration + 1e-9

    def test_exception_still_records_and_pops(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            try:
                with span("failing", recorder=recorder):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert current_span() is None
        assert len(recorder) == 1


class TestRecorder:
    def test_ring_buffer_is_bounded(self):
        recorder = TraceRecorder(capacity=8)
        with observability(tracing=True):
            for i in range(20):
                with span(f"s{i}", recorder=recorder):
                    pass
        assert len(recorder) == 8
        assert recorder.capacity == 8
        # Oldest spans are evicted first.
        assert [item.name for item in recorder.spans()] == [f"s{i}" for i in range(12, 20)]

    def test_clear(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("s", recorder=recorder):
                pass
        recorder.clear()
        assert len(recorder) == 0


class TestChromeExport:
    def test_event_fields(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("outer", recorder=recorder, tenants=3):
                with span("inner", recorder=recorder):
                    pass
        events = recorder.chrome_events()
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["cat"] == "repro"
            assert event["ts"] >= 0 and event["dur"] >= 0
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["args"]["tenants"] == 3
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        document = chrome_trace(events)
        assert document["displayTimeUnit"] == "ms"
        json.dumps(document)  # must be serialisable as-is

    def test_export_chrome_writes_file(self, tmp_path):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("s", recorder=recorder):
                pass
        path = tmp_path / "trace.json"
        recorder.export_chrome(path)
        document = json.loads(path.read_text())
        assert document["traceEvents"][0]["name"] == "s"


class TestCrossThreadPropagation:
    def test_carry_current_span_reparents_worker_spans(self):
        recorder = TraceRecorder()
        with observability(tracing=True):
            with span("parent", recorder=recorder) as parent:
                def work(i):
                    assert current_span() is parent
                    with span("child", recorder=recorder, shard=i):
                        pass
                    return i

                carried = carry_current_span(work)
                thread = threading.Thread(target=carried, args=(0,))
                thread.start()
                thread.join()
                # The worker's stack manipulation must not leak into it.
                assert current_span() is parent
        spans = _by_name(recorder.spans())
        child = spans["child"][0]
        assert child.parent_id == spans["parent"][0].span_id
        assert child.thread_id != spans["parent"][0].thread_id

    def test_carry_is_identity_when_disabled_or_rootless(self):
        def fn(x):
            return x + 1

        assert carry_current_span(fn) is fn  # tracing off
        with observability(tracing=True):
            assert carry_current_span(fn) is fn  # no active span
            with span("root", recorder=TraceRecorder()):
                assert carry_current_span(fn) is not fn
                assert carry_current_span(fn)(1) == 2
