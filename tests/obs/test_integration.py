"""Acceptance tests: traced cluster fan-out and stats/metrics agreement.

A traced :meth:`ShardedForecaster.forecast_all` over two shards must yield
one coherent span tree — cluster → shard → service flush → batch assembly
→ compiled plan replay — and the Chrome trace-event export of that tree
must be valid as-is.  Separately, the registry-backed ``*Stats`` views
must agree with ``stats_snapshot()`` so the JSON/Prometheus exports can
never drift from the objects they mirror.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

INPUT_LENGTH = 32
HORIZON = 8


@pytest.fixture
def cluster():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=8,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )
    return ShardedForecaster(
        lambda: ForecastService(LiPFormer(config), max_batch_size=8), n_shards=2
    )


def _populate(cluster, rng, n_tenants=12):
    for i in range(n_tenants):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32))
    used = {cluster.shard_for(f"tenant-{i}") for i in range(n_tenants)}
    assert len(used) >= 2, "hash routing unexpectedly collapsed onto one shard"


def _index(spans):
    by_id, by_name = {}, {}
    for item in spans:
        by_id[item.span_id] = item
        by_name.setdefault(item.name, []).append(item)
    return by_id, by_name


class TestSpanTree:
    def test_forecast_all_produces_nested_span_tree(self, cluster, rng):
        _populate(cluster, rng)
        cluster.forecast_all()  # warm the compiled plans outside the trace
        recorder = obs.default_recorder()
        recorder.clear()
        with obs.observability(tracing=True):
            results = cluster.forecast_all()
        assert len(results) == 12

        by_id, by_name = _index(recorder.spans())
        assert len(by_name["cluster.forecast_all"]) == 1
        root = by_name["cluster.forecast_all"][0]
        assert root.parent_id is None
        assert root.args["shards"] == 2 and root.args["tenants"] == 12

        shard_spans = by_name["shard.forecast"]
        assert {span.args["shard"] for span in shard_spans} == set(cluster.shard_ids())
        for span in shard_spans:
            assert span.parent_id == root.span_id

        shard_ids = {span.span_id for span in shard_spans}
        flushes = by_name["service.flush"]
        assert flushes and all(span.parent_id in shard_ids for span in flushes)

        flush_ids = {span.span_id for span in flushes}
        for name in ("batch.assemble", "plan.replay"):
            children = by_name[name]
            assert children and all(span.parent_id in flush_ids for span in children)

        # Every child's interval is contained in its parent's.
        for span in recorder.spans():
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.start + span.duration <= parent.start + parent.duration + 1e-9

    def test_chrome_export_round_trips(self, cluster, rng, tmp_path):
        _populate(cluster, rng)
        cluster.forecast_all()  # warm the compiled plans outside the trace
        recorder = obs.default_recorder()
        recorder.clear()
        with obs.observability(tracing=True):
            cluster.forecast_all()
        path = tmp_path / "forecast_all.json"
        recorder.export_chrome(path)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        assert {"cluster.forecast_all", "shard.forecast",
                "service.flush", "batch.assemble", "plan.replay"} <= names
        ids = {event["args"]["span_id"] for event in events}
        for event in events:
            assert event["ph"] == "X" and event["cat"] == "repro"
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids

    def test_untraced_forecast_all_records_nothing(self, cluster, rng):
        _populate(cluster, rng)
        recorder = obs.default_recorder()
        recorder.clear()
        cluster.forecast_all()
        assert len(recorder) == 0


class TestStatsViews:
    def test_service_view_agrees_with_stats_snapshot(self, cluster, rng):
        registry = obs.MetricsRegistry()
        service = cluster.shard(cluster.shard_ids()[0]).service
        registry.register_stats(
            "repro_serving", service.stats_snapshot, maxed=type(service.stats).MAXED
        )
        _populate(cluster, rng)
        cluster.forecast_all()
        from repro.stats import counters_dict

        # Raw counter fields only: ``as_dict`` appends derived ratios
        # (``mean_batch_size``) that the registry view intentionally omits.
        snapshot = counters_dict(service.stats_snapshot())
        views = registry.views_snapshot()
        for field, value in snapshot.items():
            assert views[f"repro_serving_{field}"] == pytest.approx(value)
        # The same numbers flow into the Prometheus text export.
        text = registry.prometheus()
        assert f"repro_serving_requests {snapshot['requests']:g}" in text

    def test_default_registry_views_move_with_traffic(self, cluster, rng):
        registry = obs.default_registry()
        before = registry.views_snapshot().get("repro_serving_requests", 0.0)
        _populate(cluster, rng)
        cluster.forecast_all()
        after = registry.views_snapshot()["repro_serving_requests"]
        assert after >= before + 12

    def test_request_latency_histogram_fills_under_traffic(self, cluster, rng):
        histogram = obs.histogram("repro_serving_request_latency_seconds")
        before = histogram.count
        _populate(cluster, rng)
        cluster.forecast_all()
        assert histogram.count >= before + 12
        assert histogram.percentile(95) > 0
