"""Unit and property tests for the ``repro.obs`` metrics primitives."""

import gc
import json
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    metrics_enabled,
    observability,
)

# The default serving buckets: 1µs..60s at 5 buckets per decade, so the
# growth factor (== worst-case percentile relative error) is 10**0.2.
BUCKETS = log_buckets(1e-6, 60.0, per_decade=5)
GROWTH = 10.0 ** (1.0 / 5.0)


class TestSwitch:
    def test_disabled_instruments_record_nothing(self):
        counter, gauge, histogram = Counter("c"), Gauge("g"), Histogram("h", buckets=BUCKETS)
        with observability(metrics=False):
            assert not metrics_enabled()
            counter.inc()
            gauge.set(5.0)
            histogram.observe(1.0)
        assert metrics_enabled()
        assert counter.value == 0
        assert gauge.value == 0
        assert histogram.count == 0

    def test_observability_restores_previous_state(self):
        with observability(metrics=False):
            with observability(metrics=True):
                assert metrics_enabled()
            assert not metrics_enabled()
        assert metrics_enabled()


class TestInstruments:
    def test_counter_and_gauge_basics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7  # high-watermark survives the lower set
        gauge.reset()
        assert gauge.max_value == 0

    def test_histogram_tracks_count_sum_min_max(self):
        histogram = Histogram("h", buckets=BUCKETS)
        for value in (0.001, 0.01, 0.1):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.111)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == pytest.approx(0.001)
        assert snapshot["max"] == pytest.approx(0.1)

    def test_empty_histogram_percentile_is_nan(self):
        assert math.isnan(Histogram("h", buckets=BUCKETS).percentile(50))

    def test_single_observation_percentiles_are_exact(self):
        histogram = Histogram("h", buckets=BUCKETS)
        histogram.observe(0.042)
        for q in (0, 50, 99, 100):
            # Clamping to [min, max] pins every percentile to the sample.
            assert histogram.percentile(q) == pytest.approx(0.042)

    def test_log_buckets_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)


class TestPercentileProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-5, max_value=50.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=400,
        ),
        q=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_estimate_within_one_bucket_of_exact(self, samples, q):
        """Bucket interpolation lands within one bucket's relative error.

        The reference is ``np.percentile(..., method="inverted_cdf")``,
        whose rank convention the histogram mirrors: the exact value is
        then an order statistic guaranteed to lie in the same bucket as
        the estimate, so estimate/exact stays within the bucket growth
        factor ``10 ** (1/per_decade)``.
        """
        histogram = Histogram("h", buckets=BUCKETS)
        for sample in samples:
            histogram.observe(sample)
        estimate = histogram.percentile(q)
        exact = float(np.percentile(samples, q, method="inverted_cdf"))
        assert exact / GROWTH <= estimate <= exact * GROWTH

    @settings(max_examples=30, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-5, max_value=50.0, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_percentiles_monotone_and_bounded(self, samples):
        histogram = Histogram("h", buckets=BUCKETS)
        for sample in samples:
            histogram.observe(sample)
        estimates = [histogram.percentile(q) for q in (1, 25, 50, 75, 95, 99, 100)]
        assert estimates == sorted(estimates)
        assert min(samples) <= estimates[0]
        assert estimates[-1] <= max(samples)


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 10_000

    def test_no_lost_counter_increments(self):
        counter = Counter("c")

        def worker():
            for _ in range(self.PER_THREAD):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_no_lost_histogram_observations(self):
        histogram = Histogram("h", buckets=BUCKETS)
        values = [10 ** (-5 + (i % 50) / 10) for i in range(self.PER_THREAD)]

        def worker():
            for value in values:
                histogram.observe(value)

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == self.THREADS * self.PER_THREAD
        assert sum(histogram.bucket_counts()) == self.THREADS * self.PER_THREAD
        assert histogram.sum == pytest.approx(self.THREADS * sum(values), rel=1e-6)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h", labels=("op",)) is registry.histogram("h", labels=("op",))

    def test_kind_or_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")
        registry.histogram("labeled", labels=("op",))
        with pytest.raises(ValueError):
            registry.histogram("labeled", labels=("shard",))

    def test_labels_fan_out_to_independent_children(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labels=("op",))
        family.labels(op="add").inc(3)
        family.labels(op="remove").inc(1)
        assert family.labels(op="add").value == 3
        assert family.labels(op="remove").value == 1
        with pytest.raises(ValueError):
            family.labels(shard="x")

    def test_stats_view_merges_sum_and_max(self):
        registry = MetricsRegistry()
        first = {"requests": 3, "largest_batch": 8}
        second = {"requests": 5, "largest_batch": 4}
        registry.register_stats("repro_serving", lambda: first, maxed=("largest_batch",))
        registry.register_stats("repro_serving", lambda: second, maxed=("largest_batch",))
        views = registry.views_snapshot()
        assert views["repro_serving_requests"] == 8
        assert views["repro_serving_largest_batch"] == 8

    def test_dead_weakly_bound_view_is_pruned(self):
        class Owner:
            def snapshot(self):
                return {"requests": 1}

        registry = MetricsRegistry()
        owner = Owner()
        registry.register_stats("repro_x", owner.snapshot)
        assert registry.views_snapshot() == {"repro_x_requests": 1.0}
        del owner
        gc.collect()
        assert registry.views_snapshot() == {}

    def test_json_snapshot_is_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc()
        registry.histogram("h", "a histogram", buckets=BUCKETS).observe(0.01)
        document = json.loads(json.dumps(registry.snapshot()))
        assert document["metrics"]["c"]["type"] == "counter"
        assert document["metrics"]["c"]["series"][0]["value"] == 1
        histogram_series = document["metrics"]["h"]["series"][0]
        assert histogram_series["count"] == 1
        assert histogram_series["p50"] == pytest.approx(0.01)

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_total", "help text").inc(2)
        family = registry.histogram("repro_h", labels=("op",), buckets=(0.1, 1.0))
        family.labels(op="x").observe(0.05)
        family.labels(op="x").observe(0.5)
        registry.register_stats("repro_view", lambda: {"field": 7})
        text = registry.prometheus()
        assert "# TYPE repro_total counter" in text
        assert "repro_total 2" in text
        assert '# TYPE repro_h histogram' in text
        assert 'repro_h_bucket{op="x",le="0.1"} 1' in text
        assert 'repro_h_bucket{op="x",le="+Inf"} 2' in text
        assert 'repro_h_count{op="x"} 2' in text
        assert "repro_view_field 7" in text

    def test_reset_zeroes_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h", buckets=BUCKETS)
        counter.inc(5)
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
