"""Tests for admission control: priorities, deadlines, typed shedding.

The admission layer must be inert by default (bit-parity with the
pre-admission service), refuse work typed when configured, and never
waste a forward pass on a request whose deadline already lapsed.
"""

import time

import numpy as np
import pytest

import repro.obs as obs
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    AdmissionPolicy,
    DeadlineExceeded,
    ForecastService,
    Overloaded,
)
from repro.serving.admission import priority_rank, resolve_deadline

CONFIG = ModelConfig(
    input_length=24, horizon=4, n_channels=1, patch_length=12,
    hidden_dim=8, dropout=0.0, n_heads=2, n_layers=1, seed=3,
)


def make_service(admission=None, max_batch_size=8):
    return ForecastService(
        LiPFormer(CONFIG), max_batch_size=max_batch_size, admission=admission
    )


@pytest.fixture
def history(rng):
    return rng.normal(size=(CONFIG.input_length, 1)).astype(np.float32)


class TestPolicyValidation:
    def test_defaults_are_inert(self):
        policy = AdmissionPolicy()
        assert not policy.bounded
        assert policy.default_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_limit": 0},
            {"queue_limit": -1},
            {"default_timeout": 0.0},
            {"default_timeout": -1.0},
            {"flush_fraction": 0.0},
            {"flush_fraction": 1.5},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_priority_ladder(self):
        ranks = [priority_rank(p) for p in PRIORITIES]
        assert ranks == sorted(ranks)
        assert priority_rank("interactive") < priority_rank(DEFAULT_PRIORITY)
        with pytest.raises(ValueError, match="unknown priority"):
            priority_rank("vip")


class TestResolveDeadline:
    def test_deadline_free_by_default(self):
        assert resolve_deadline(10.0) is None

    def test_timeout_is_anchored_at_now(self):
        assert resolve_deadline(10.0, timeout=2.5) == pytest.approx(12.5)

    def test_absolute_deadline_wins_over_policy(self):
        policy = AdmissionPolicy(default_timeout=1.0)
        assert resolve_deadline(10.0, deadline=11.0, policy=policy) == 11.0

    def test_policy_default_applies_last(self):
        policy = AdmissionPolicy(default_timeout=3.0)
        assert resolve_deadline(10.0, policy=policy) == pytest.approx(13.0)

    def test_both_timing_arguments_is_a_caller_bug(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_deadline(10.0, timeout=1.0, deadline=11.0)

    def test_nonpositive_timeout_raises(self):
        with pytest.raises(ValueError, match="timeout"):
            resolve_deadline(10.0, timeout=0.0)


class TestQueueBounds:
    def test_full_queue_refuses_equal_priority_typed(self, history):
        service = make_service(AdmissionPolicy(queue_limit=2))
        service.submit(history)
        service.submit(history)
        with pytest.raises(Overloaded, match="pending queue full"):
            service.submit(history)
        assert service.stats.shed_overloaded == 1
        assert service.pending == 2  # queued work untouched

    def test_higher_priority_displaces_newest_lowest(self, history):
        service = make_service(AdmissionPolicy(queue_limit=2))
        older = service.submit(history, priority="best_effort")
        newer = service.submit(history, priority="best_effort")
        vip = service.submit(history, priority="interactive")
        with pytest.raises(Overloaded):
            newer.result()  # the newest lowest-priority request was evicted
        assert service.pending == 2
        service.flush()
        assert older.result().shape == (CONFIG.horizon, 1)
        assert vip.result().shape == (CONFIG.horizon, 1)

    def test_lower_priority_never_displaces_equal_class(self, history):
        service = make_service(AdmissionPolicy(queue_limit=1))
        queued = service.submit(history, priority="batch")
        with pytest.raises(Overloaded):
            service.submit(history, priority="batch")
        service.flush()
        assert queued.done()

    def test_unknown_priority_rejected_before_any_state_changes(self, history):
        service = make_service(AdmissionPolicy(queue_limit=1))
        with pytest.raises(ValueError, match="unknown priority"):
            service.submit(history, priority="urgent")
        assert service.pending == 0
        assert service.stats.requests == 0


class TestDeadlines:
    def test_expired_at_submit_is_refused_typed(self, history):
        service = make_service()
        with pytest.raises(DeadlineExceeded):
            service.submit(history, deadline=obs.now() - 0.01)
        assert service.stats.shed_expired == 1
        assert service.stats.requests == 0

    @staticmethod
    def _disarm_timer(service):
        """Suppress the rescue timer so flush-time shedding is reachable."""
        with service._lock:
            service._cancel_timer_locked()

    def test_expiry_while_queued_is_shed_at_flush(self, history):
        service = make_service()
        doomed = service.submit(history, timeout=0.02)
        alive = service.submit(history)
        self._disarm_timer(service)
        time.sleep(0.05)
        drained = service.flush()
        assert drained == 2  # both left the queue ...
        with pytest.raises(DeadlineExceeded):
            doomed.result()  # ... but only one got a forward pass
        assert alive.result().shape == (CONFIG.horizon, 1)
        assert service.stats.deadline_misses == 1
        assert service.stats.forward_passes == 1

    def test_policy_default_timeout_applies(self, history):
        service = make_service(AdmissionPolicy(default_timeout=0.02))
        doomed = service.submit(history)
        self._disarm_timer(service)
        time.sleep(0.05)
        service.flush()
        with pytest.raises(DeadlineExceeded):
            doomed.result()

    def test_all_expired_flush_runs_no_forward_pass(self, history):
        service = make_service()
        service.submit(history, timeout=0.01)
        self._disarm_timer(service)
        time.sleep(0.03)
        assert service.flush() == 1
        assert service.stats.forward_passes == 0

    def test_deadline_timer_flushes_in_background(self, history):
        service = make_service(AdmissionPolicy(default_timeout=0.2))
        handle = service.submit(history)
        deadline = time.monotonic() + 2.0
        while not handle.done() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert handle.done(), "deadline timer never flushed the queue"
        assert handle.result().shape == (CONFIG.horizon, 1)
        assert service.stats.timer_flushes >= 1
        service.close()

    def test_close_flushes_and_disarms_timer(self, history):
        service = make_service(AdmissionPolicy(default_timeout=10.0))
        handle = service.submit(history)
        service.close()
        assert handle.done()
        assert service._timer is None


class TestSchedulingClock:
    def test_submitted_at_stamped_with_metrics_disabled(self, history):
        # Satellite: the scheduling clock is independent of the metrics
        # gate — deadlines must work even with observability fully off.
        service = make_service()
        with obs.observability(metrics=False):
            assert not obs.metrics_enabled()
            service.submit(history)
            assert service._pending[0].submitted_at > 0.0
        service.flush()

    def test_empty_flush_returns_zero_without_forward_pass(self):
        service = make_service()
        assert service.flush() == 0
        assert service.stats.forward_passes == 0
        assert service.stats.flushes == 0


def _series(metric_name):
    metric = obs.default_registry().snapshot()["metrics"].get(metric_name)
    if metric is None:
        return {}
    return {tuple(sorted(s["labels"].items())): s for s in metric["series"]}


class TestShedMetrics:
    def test_shed_reasons_are_counted(self, history):
        service = make_service(AdmissionPolicy(queue_limit=1))

        def shed_counts():
            return {
                labels: s["value"]
                for labels, s in _series("repro_serving_shed_total").items()
            }

        before = shed_counts()
        with obs.observability(metrics=True):
            service.submit(history)
            with pytest.raises(Overloaded):
                service.submit(history)
            with pytest.raises(DeadlineExceeded):
                service.submit(history, deadline=obs.now() - 1.0)
        after = shed_counts()
        overloaded = (("reason", "overloaded"),)
        expired = (("reason", "expired"),)
        assert after.get(overloaded, 0.0) - before.get(overloaded, 0.0) == 1.0
        assert after.get(expired, 0.0) - before.get(expired, 0.0) == 1.0
        service.flush()

    def test_per_priority_latency_recorded(self, history):
        service = make_service()
        key = (("priority", "interactive"),)
        before = _series("repro_serving_priority_latency_seconds").get(key)
        before_count = 0 if before is None else before["count"]
        with obs.observability(metrics=True):
            service.submit(history, priority="interactive")
            service.submit(history, priority="best_effort")
            service.flush()
        after = _series("repro_serving_priority_latency_seconds")[key]
        assert after["count"] == before_count + 1


class TestParity:
    def test_admitted_traffic_is_bit_identical_to_plain_service(self, rng):
        """Priorities reorder the batch, but every admitted forecast must
        be bitwise what the pre-admission service produces."""
        histories = [
            rng.normal(size=(CONFIG.input_length, 1)).astype(np.float32)
            for _ in range(6)
        ]
        plain = make_service()
        gated = make_service(AdmissionPolicy(queue_limit=16, default_timeout=60.0))
        priorities = ["best_effort", "interactive", "batch"] * 2
        plain_handles = [plain.submit(h) for h in histories]
        gated_handles = [
            gated.submit(h, priority=p) for h, p in zip(histories, priorities)
        ]
        plain.flush()
        gated.flush()
        for expected, actual in zip(plain_handles, gated_handles):
            np.testing.assert_array_equal(expected.result(), actual.result())
        gated.close()
