"""Tests for the micro-batched ForecastService."""

import numpy as np
import pytest

from repro.baselines import DLinear
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.data.windows import SlidingWindowDataset
from repro.serving import ForecastService, ModelRegistry, ServiceStats


def _config_for(data, hidden=16):
    return ModelConfig(
        input_length=data.input_length,
        horizon=data.horizon,
        n_channels=data.n_channels,
        patch_length=12,
        hidden_dim=hidden,
        dropout=0.0,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=2,
        covariate_hidden_dim=8,
    )


@pytest.fixture
def service(cycle_smoke_data):
    return ForecastService(LiPFormer(_config_for(cycle_smoke_data)), max_batch_size=4)


@pytest.fixture
def history(cycle_smoke_data, rng):
    data = cycle_smoke_data
    return rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)


class TestSubmitAndFlush:
    def test_submit_queues_and_result_flushes(self, service, history):
        handle = service.submit(history)
        assert not handle.done()
        assert service.pending == 1
        forecast = handle.result()
        assert handle.done()
        assert service.pending == 0
        assert forecast.shape == (service.config.horizon, service.config.n_channels)

    def test_queue_auto_flushes_at_max_batch_size(self, service, history):
        handles = [service.submit(history + i) for i in range(service.max_batch_size)]
        assert service.pending == 0, "full micro-batch must flush automatically"
        assert all(h.done() for h in handles)
        assert service.stats.flushes == 1

    def test_batched_results_match_individual_predict(self, service, cycle_smoke_data, rng):
        data = cycle_smoke_data
        histories = [
            rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)
            for _ in range(3)
        ]
        handles = [service.submit(h) for h in histories]
        service.flush()
        for h, handle in zip(histories, handles):
            expected = service.model.predict(h[None])[0]
            np.testing.assert_allclose(handle.result(), expected, atol=1e-5)

    def test_short_history_is_padded_and_served(self, service, history):
        forecast = service.submit(history[-10:]).result()
        assert forecast.shape == (service.config.horizon, service.config.n_channels)
        assert service.stats.padded_requests == 1

    def test_mixed_covariate_requests_resolve_in_one_flush(self, service, cycle_smoke_data, rng):
        data = cycle_smoke_data
        horizon = data.horizon
        history = rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)
        fn = rng.normal(size=(horizon, data.covariate_numerical_dim)).astype(np.float32)
        fc = np.zeros((horizon, len(data.covariate_categorical_cardinalities)), dtype=np.int64)
        plain = service.submit(history)
        enriched = service.submit(history, future_numerical=fn, future_categorical=fc)
        service.flush()
        assert plain.done() and enriched.done()
        # covariate guidance changes the forecast (vector mapping is trained,
        # but even untrained the grouping must not cross-contaminate rows)
        np.testing.assert_allclose(
            plain.result(), service.model.predict(history[None])[0], atol=1e-5
        )
        np.testing.assert_allclose(
            enriched.result(),
            service.model.predict(history[None], future_numerical=fn[None], future_categorical=fc[None])[0],
            atol=1e-5,
        )

    def test_covariates_dropped_for_unsupporting_model(self, cycle_smoke_data, rng):
        data = cycle_smoke_data
        service = ForecastService(DLinear(_config_for(data)))
        history = rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)
        fn = rng.normal(size=(data.horizon, data.covariate_numerical_dim)).astype(np.float32)
        forecast = service.submit(history, future_numerical=fn).result()
        np.testing.assert_allclose(forecast, service.model.predict(history[None])[0], atol=1e-5)

    def test_bad_covariate_shape_raises(self, service, history):
        with pytest.raises(ValueError):
            service.submit(history, future_numerical=np.zeros((3, 2), dtype=np.float32))

    def test_partial_covariates_rejected_at_submit_time(self, service, cycle_smoke_data, rng):
        """A combination the encoder would reject must fail the submitter,
        not whoever triggers the flush."""
        data = cycle_smoke_data
        fn = rng.normal(size=(data.horizon, data.covariate_numerical_dim)).astype(np.float32)
        with pytest.raises(ValueError, match="future_categorical"):
            service.submit(
                rng.normal(size=(data.input_length, data.n_channels)), future_numerical=fn
            )
        assert service.pending == 0

    def test_wrong_covariate_width_rejected_at_submit_time(self, service, cycle_smoke_data, rng):
        data = cycle_smoke_data
        fn = rng.normal(size=(data.horizon, data.covariate_numerical_dim + 1)).astype(np.float32)
        fc = np.zeros((data.horizon, len(data.covariate_categorical_cardinalities)), dtype=np.int64)
        with pytest.raises(ValueError, match="future_numerical"):
            service.submit(
                rng.normal(size=(data.input_length, data.n_channels)),
                future_numerical=fn, future_categorical=fc,
            )

    def test_failing_group_does_not_drop_other_requests(self, service, cycle_smoke_data, rng):
        """A forward-pass failure is confined to its coalesced group."""
        data = cycle_smoke_data
        history = rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)
        fn = rng.normal(size=(data.horizon, data.covariate_numerical_dim)).astype(np.float32)
        fc = np.zeros((data.horizon, len(data.covariate_categorical_cardinalities)), dtype=np.int64)
        original = service.model.predict

        def flaky(x, future_numerical=None, future_categorical=None, **kwargs):
            if future_numerical is not None:
                raise RuntimeError("covariate branch down")
            return original(x, future_numerical=future_numerical,
                            future_categorical=future_categorical, **kwargs)

        service.model.predict = flaky
        plain = service.submit(history)
        failing = service.submit(history, future_numerical=fn, future_categorical=fc)
        service.flush()
        assert plain.done() and failing.done()
        assert plain.result().shape == (data.horizon, data.n_channels)
        with pytest.raises(RuntimeError, match="covariate branch down"):
            failing.result()
        with pytest.raises(RuntimeError):   # error sticks on repeated result()
            failing.result()

    def test_model_left_in_prior_mode(self, service, history):
        service.model.train()
        service.submit(history).result()
        assert service.model.training
        service.model.eval()
        service.submit(history).result()
        assert not service.model.training


class TestPredictManyAndBackfill:
    def test_predict_many_matches_model_predict(self, service, cycle_smoke_data, rng):
        data = cycle_smoke_data
        histories = rng.normal(size=(6, data.input_length, data.n_channels)).astype(np.float32)
        out = service.predict_many(list(histories))
        np.testing.assert_allclose(out, service.model.predict(histories), atol=1e-5)

    def test_backfill_covers_every_window(self, service, cycle_smoke_data):
        dataset = cycle_smoke_data.test
        predictions = service.backfill(dataset, batch_size=8)
        assert predictions.shape == (
            len(dataset), service.config.horizon, service.config.n_channels
        )
        batch = dataset.as_arrays(np.arange(len(dataset)))
        expected = service.model.predict(
            batch["x"],
            future_numerical=batch["future_numerical"],
            future_categorical=batch["future_categorical"],
        )
        np.testing.assert_allclose(predictions, expected, atol=1e-5)

    def test_backfill_rejects_mismatched_dataset(self, service, cycle_smoke_data):
        series = cycle_smoke_data.test.series
        wrong = SlidingWindowDataset(series, cycle_smoke_data.input_length // 2, 12)
        with pytest.raises(ValueError, match="input_length"):
            service.backfill(wrong)

    def test_backfill_uses_separate_counters(self, service, cycle_smoke_data, rng):
        """Backfill must not dilute the submit-path micro-batching stats."""
        data = cycle_smoke_data
        history = rng.normal(size=(data.input_length, data.n_channels)).astype(np.float32)
        for _ in range(3):
            service.submit(history)
        service.flush()
        passes_before = service.stats.forward_passes
        service.backfill(data.test, batch_size=8)
        assert service.stats.forward_passes == passes_before
        assert service.stats.backfill_windows == len(data.test)
        assert service.stats.backfill_batches == -(-len(data.test) // 8)
        assert service.stats.mean_batch_size == 3.0

    def test_backfill_rejects_mismatched_horizon(self, service, cycle_smoke_data):
        series = cycle_smoke_data.test.series
        wrong = SlidingWindowDataset(series, cycle_smoke_data.input_length,
                                     cycle_smoke_data.horizon * 2)
        with pytest.raises(ValueError, match="horizon"):
            service.backfill(wrong)


class TestStats:
    def test_as_dict_reports_counters_and_ratios(self, service, history):
        for _ in range(3):
            service.submit(history)
        service.flush()
        report = service.stats.as_dict()
        assert report["requests"] == 3
        assert report["forward_passes"] == 1
        assert report["mean_batch_size"] == 3.0
        assert set(report) >= {"flushes", "padded_requests", "largest_batch",
                               "backfill_batches", "backfill_windows"}

    def test_reset_zeroes_every_counter(self, service, history):
        for _ in range(3):
            service.submit(history)
        service.flush()
        service.stats.reset()
        assert service.stats.as_dict() == ServiceStats().as_dict()
        # Counters keep working after a reset (benchmark phase 2).
        service.submit(history)
        service.flush()
        assert service.stats.requests == 1

    def test_merge_aggregates_per_shard_stats(self):
        a = ServiceStats(requests=10, forward_passes=2, flushes=2,
                         padded_requests=1, largest_batch=6,
                         backfill_batches=1, backfill_windows=32)
        b = ServiceStats(requests=6, forward_passes=2, flushes=3,
                         padded_requests=0, largest_batch=4,
                         backfill_batches=0, backfill_windows=0)
        merged = ServiceStats.merge([a, b])
        assert merged.requests == 16
        assert merged.forward_passes == 4
        assert merged.flushes == 5
        assert merged.padded_requests == 1
        assert merged.largest_batch == 6          # max, not sum
        assert merged.backfill_windows == 32
        assert merged.mean_batch_size == 4.0      # derived fleet-wide
        # Merging nothing is the zero object; inputs are not mutated.
        assert ServiceStats.merge([]) == ServiceStats()
        assert a.requests == 10


class TestFromRegistry:
    def test_from_registry_resolves_model(self, cycle_smoke_data):
        config = _config_for(cycle_smoke_data)
        registry = ModelRegistry(capacity=2)
        service = ForecastService.from_registry(registry, "DLinear", config)
        assert registry.get("DLinear", config) is service.model

    def test_invalid_max_batch_size(self, cycle_smoke_data):
        with pytest.raises(ValueError):
            ForecastService(DLinear(_config_for(cycle_smoke_data)), max_batch_size=0)
