"""Unit tests for serving request padding and coalescing."""

import numpy as np
import pytest

from repro.serving.batching import Forecast, ForecastRequest, coalesce, pad_history


def _request(history, fn=None, fc=None):
    return ForecastRequest(
        history=np.asarray(history, dtype=np.float32),
        observed_length=len(history),
        future_numerical=fn,
        future_categorical=fc,
        forecast=Forecast(service=None),
    )


class TestPadHistory:
    def test_exact_length_passthrough(self):
        history = np.arange(12, dtype=np.float32).reshape(6, 2)
        padded, observed = pad_history(history, input_length=6, n_channels=2)
        np.testing.assert_array_equal(padded, history)
        assert observed == 6

    def test_long_history_keeps_most_recent_steps(self):
        history = np.arange(20, dtype=np.float32).reshape(10, 2)
        padded, observed = pad_history(history, input_length=4, n_channels=2)
        np.testing.assert_array_equal(padded, history[-4:])
        assert observed == 4

    def test_short_history_edge_padded_on_left(self):
        history = np.array([[5.0, 6.0], [7.0, 8.0]], dtype=np.float32)
        padded, observed = pad_history(history, input_length=5, n_channels=2)
        assert padded.shape == (5, 2)
        assert observed == 2
        np.testing.assert_array_equal(padded[:3], np.repeat(history[:1], 3, axis=0))
        np.testing.assert_array_equal(padded[3:], history)

    def test_zeros_pad_mode(self):
        history = np.ones((2, 3), dtype=np.float32)
        padded, _ = pad_history(history, input_length=4, n_channels=3, pad_mode="zeros")
        np.testing.assert_array_equal(padded[:2], np.zeros((2, 3)))

    def test_one_dimensional_history_promoted_to_single_channel(self):
        padded, observed = pad_history(np.arange(6.0), input_length=6, n_channels=1)
        assert padded.shape == (6, 1)
        assert observed == 6

    @pytest.mark.parametrize(
        "history, kwargs",
        [
            (np.ones((4, 3)), {"input_length": 4, "n_channels": 2}),   # channel mismatch
            (np.ones((0, 2)), {"input_length": 4, "n_channels": 2}),   # empty
            (np.ones((2, 2, 2)), {"input_length": 4, "n_channels": 2}),  # bad rank
        ],
    )
    def test_invalid_inputs_raise(self, history, kwargs):
        with pytest.raises(ValueError):
            pad_history(history, **kwargs)

    def test_unknown_pad_mode_raises(self):
        with pytest.raises(ValueError):
            pad_history(np.ones((2, 1)), input_length=4, n_channels=1, pad_mode="wrap")


class TestCoalesce:
    def test_homogeneous_requests_form_one_group(self):
        requests = [_request(np.full((4, 2), i)) for i in range(3)]
        groups = coalesce(requests)
        assert len(groups) == 1
        batch, members = groups[0]
        assert batch["x"].shape == (3, 4, 2)
        assert batch["future_numerical"] is None
        assert members == requests  # submission order preserved

    def test_mixed_covariates_split_into_groups(self):
        fn = np.ones((6, 2), dtype=np.float32)
        fc = np.zeros((6, 1), dtype=np.int64)
        requests = [
            _request(np.zeros((4, 2)), fn=fn, fc=fc),
            _request(np.ones((4, 2))),
            _request(np.full((4, 2), 2.0), fn=fn, fc=fc),
        ]
        groups = coalesce(requests)
        assert len(groups) == 2
        sizes = sorted(len(members) for _, members in groups)
        assert sizes == [1, 2]
        for batch, members in groups:
            if members[0].has_covariates:
                assert batch["future_numerical"].shape == (2, 6, 2)
                assert batch["future_categorical"].shape == (2, 6, 1)
            else:
                assert batch["future_numerical"] is None

    def test_numerical_only_and_both_do_not_mix(self):
        fn = np.ones((6, 2), dtype=np.float32)
        fc = np.zeros((6, 1), dtype=np.int64)
        requests = [
            _request(np.zeros((4, 2)), fn=fn),
            _request(np.zeros((4, 2)), fn=fn, fc=fc),
        ]
        assert len(coalesce(requests)) == 2

    def test_empty_input(self):
        assert coalesce([]) == []
