"""Tests for the LRU model registry and config hashing."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.serving import ModelRegistry, config_hash


@pytest.fixture
def config():
    return ModelConfig(
        input_length=48, horizon=12, n_channels=3, patch_length=12,
        hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1,
    )


class TestConfigHash:
    def test_stable_across_calls(self, config):
        assert config_hash(config) == config_hash(config)

    def test_equal_configs_hash_equal(self, config):
        assert config_hash(config) == config_hash(config.with_overrides())

    def test_any_field_change_changes_hash(self, config):
        assert config_hash(config) != config_hash(config.with_overrides(horizon=24))
        assert config_hash(config) != config_hash(config.with_overrides(hidden_dim=32))

    def test_extra_kwargs_participate(self, config):
        assert config_hash(config) != config_hash(config, extra={"use_ffn": True})


class TestModelRegistry:
    def test_get_builds_on_cold_miss_and_hits_after(self, config):
        registry = ModelRegistry(capacity=2)
        first = registry.get("DLinear", config)
        second = registry.get("DLinear", config)
        assert first is second
        assert registry.stats.misses == 1
        assert registry.stats.hits == 1

    def test_different_scenarios_get_different_models(self, config):
        registry = ModelRegistry(capacity=4)
        a = registry.get("DLinear", config)
        b = registry.get("DLinear", config.with_overrides(horizon=24))
        c = registry.get("NLinear", config)
        assert a is not b and a is not c
        assert len(registry) == 3

    def test_capacity_evicts_least_recently_used(self, config, tmp_path):
        registry = ModelRegistry(capacity=2, cache_dir=str(tmp_path))
        registry.get("DLinear", config)
        registry.get("NLinear", config)
        registry.get("DLinear", config)                        # promote DLinear
        registry.get("LightTS", config)                        # evicts NLinear
        names = [name for name, _ in registry.keys()]
        assert names == ["DLinear", "LightTS"]
        assert registry.stats.evictions == 1

    def test_evicted_weights_reload_bit_identical(self, config, tmp_path):
        registry = ModelRegistry(capacity=1, cache_dir=str(tmp_path))
        model = registry.get("DLinear", config)
        # mutate weights as training would, so a fresh factory build differs
        for param in model.parameters():
            param.data = param.data + 1.5
        expected = model.state_dict()
        registry.get("NLinear", config)                        # evicts + spills DLinear
        reloaded = registry.get("DLinear", config)             # rebuild + load_state
        assert reloaded is not model
        assert registry.stats.reloads == 1
        for name, value in reloaded.state_dict().items():
            np.testing.assert_array_equal(value, expected[name])

    def test_register_live_model_is_served_as_is(self, config):
        registry = ModelRegistry(capacity=2)
        from repro.baselines import DLinear

        trained = DLinear(config)
        registry.register("DLinear", config, model=trained)
        assert registry.get("DLinear", config) is trained

    def test_explicit_eviction_roundtrip(self, config, tmp_path):
        registry = ModelRegistry(capacity=2, cache_dir=str(tmp_path))
        model = registry.get("DLinear", config)
        state = model.state_dict()
        key = registry.evict_lru()
        assert key is not None and key not in registry
        reloaded = registry.get("DLinear", config)
        for name, value in reloaded.state_dict().items():
            np.testing.assert_array_equal(value, state[name])

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)

    def test_concurrent_gets_stay_consistent(self, config, tmp_path):
        """Parallel scenario resolution at capacity must not corrupt the LRU."""
        import threading

        registry = ModelRegistry(capacity=2, cache_dir=str(tmp_path))
        names = ["DLinear", "NLinear", "LightTS", "DLinear", "NLinear"]
        errors = []

        def worker(name):
            try:
                for _ in range(10):
                    model = registry.get(name, config)
                    assert model.config is config
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in names]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(registry) <= 2
        assert registry.stats.hits + registry.stats.misses == 50
