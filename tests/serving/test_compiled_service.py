"""Compiled fast path through the serving layer: parity, warmup, scratch reuse."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.serving.batching import BatchAssembler, ForecastRequest, coalesce, group_requests, Forecast


@pytest.fixture
def config():
    return ModelConfig(
        input_length=48, horizon=12, n_channels=2, patch_length=12,
        hidden_dim=16, dropout=0.0, covariate_numerical_dim=3,
        covariate_categorical_cardinalities=(5,), covariate_embed_dim=2,
        covariate_hidden_dim=8, seed=11,
    )


@pytest.fixture
def model(config, rng):
    model = LiPFormer(config)
    # Give the zero-initialised vector mapping weight so covariates matter.
    model.vector_mapping.weight.data[...] = rng.normal(
        size=model.vector_mapping.weight.shape
    ).astype(np.float32)
    return model


def _histories(rng, n, config):
    return [
        rng.normal(size=(config.input_length, config.n_channels)).astype(np.float32)
        for _ in range(n)
    ]


class TestCompiledServiceParity:
    def test_submit_path_bit_identical_to_eager_service(self, model, config, rng):
        compiled = ForecastService(model, max_batch_size=8, compiled=True)
        eager = ForecastService(model, max_batch_size=8, compiled=False)
        histories = _histories(rng, 8, config)
        assert np.array_equal(
            compiled.predict_many(histories), eager.predict_many(histories)
        )
        predictor = model.compiled_predictor()
        assert predictor.traces >= 1

    def test_covariate_requests_bit_identical_to_eager(self, model, config, rng):
        compiled = ForecastService(model, max_batch_size=8, compiled=True)
        eager = ForecastService(model, max_batch_size=8, compiled=False)
        histories = _histories(rng, 4, config)
        fn = rng.normal(size=(4, config.horizon, 3)).astype(np.float32)
        fc = rng.integers(0, 5, size=(4, config.horizon, 1))
        a = compiled.predict_many(histories, future_numerical=fn, future_categorical=fc)
        b = eager.predict_many(histories, future_numerical=fn, future_categorical=fc)
        assert np.array_equal(a, b)

    def test_mixed_flush_groups_resolve_correctly_with_scratch_reuse(self, model, config, rng):
        """Two signature groups in one flush share the scratch buffers
        sequentially; every resolved row must match an eager service fed
        the identical submission pattern (same groups, same batches)."""
        compiled = ForecastService(model, max_batch_size=8, compiled=True)
        eager = ForecastService(model, max_batch_size=8, compiled=False)
        histories = _histories(rng, 6, config)
        fn = rng.normal(size=(config.horizon, 3)).astype(np.float32)
        fc = rng.integers(0, 5, size=(config.horizon, 1))
        handles = {}
        for name, service in (("compiled", compiled), ("eager", eager)):
            plain = [service.submit(h) for h in histories[:3]]
            with_cov = [
                service.submit(h, future_numerical=fn, future_categorical=fc)
                for h in histories[3:]
            ]
            service.flush()
            handles[name] = plain + with_cov
        for got, want in zip(handles["compiled"], handles["eager"]):
            assert np.array_equal(got.result(), want.result())

    def test_results_survive_later_flushes(self, model, config, rng):
        """Plan output buffers are reused across flushes; resolved handles
        must hold copies, not views into the arena."""
        service = ForecastService(model, max_batch_size=4)
        first_history = _histories(rng, 1, config)[0]
        first = service.submit(first_history)
        service.flush()
        snapshot = first.result().copy()
        for history in _histories(rng, 5, config):
            service.submit(history)
        service.flush()
        assert np.array_equal(first.result(), snapshot)

    def test_warmup_pretraces_one_polymorphic_plan(self, model, config):
        service = ForecastService(model, max_batch_size=8)
        assert service.warmup() == 1          # one plan serves every batch size
        predictor = model.compiled_predictor()
        traces_after_warmup = predictor.traces
        assert traces_after_warmup == 1
        rng = np.random.default_rng(0)
        for n in (8, 3, 1, 5):                # full batch and arbitrary tails
            service.predict_many(_histories(rng, n, config))
        assert predictor.traces == traces_after_warmup  # every size was warm
        assert predictor.hits >= 4

    def test_warmup_is_a_noop_for_eager_services(self, model):
        service = ForecastService(model, max_batch_size=8, compiled=False)
        assert service.warmup() == 0

    def test_backfill_compiled_matches_eager(self, model, config, rng):
        from repro.data.containers import MultivariateTimeSeries
        from repro.data.timefeatures import make_timestamps
        from repro.data.windows import SlidingWindowDataset

        values = rng.normal(size=(120, config.n_channels)).astype(np.float32)
        series = MultivariateTimeSeries(
            values=values, timestamps=make_timestamps(len(values), freq_minutes=60), name="bf"
        )
        dataset = SlidingWindowDataset(series, config.input_length, config.horizon)
        compiled = ForecastService(model, max_batch_size=16, compiled=True)
        eager = ForecastService(model, max_batch_size=16, compiled=False)
        assert np.array_equal(compiled.backfill(dataset), eager.backfill(dataset))


class TestBatchAssembler:
    def _request(self, rng, config, fn=None, fc=None):
        history = rng.normal(size=(config.input_length, config.n_channels)).astype(np.float32)
        return ForecastRequest(
            history=history,
            observed_length=config.input_length,
            future_numerical=fn,
            future_categorical=fc,
            forecast=Forecast(None),
        )

    def test_assemble_matches_coalesce_stacks(self, config, rng):
        fn = rng.normal(size=(config.horizon, 3)).astype(np.float32)
        fc = rng.integers(0, 5, size=(config.horizon, 1)).astype(np.int64)
        requests = [
            self._request(rng, config),
            self._request(rng, config, fn=fn, fc=fc),
            self._request(rng, config),
        ]
        assembler = BatchAssembler()
        stacked = {id(m[0]): batch for batch, m in coalesce(requests)}
        for members in group_requests(requests):
            batch = assembler.assemble(members)
            expected = stacked[id(members[0])]
            for key in ("x", "future_numerical", "future_categorical"):
                if expected[key] is None:
                    assert batch[key] is None
                else:
                    assert np.array_equal(batch[key], expected[key])
                    assert batch[key].dtype == expected[key].dtype

    def test_scratch_buffer_is_reused_between_assemblies(self, config, rng):
        assembler = BatchAssembler()
        members = [self._request(rng, config) for _ in range(4)]
        first = assembler.assemble(members)["x"]
        second = assembler.assemble(members)["x"]
        assert first.base is second.base or first is second  # same backing buffer

    def test_scratch_grows_for_larger_groups(self, config, rng):
        assembler = BatchAssembler()
        small = assembler.assemble([self._request(rng, config)])["x"]
        big_members = [self._request(rng, config) for _ in range(6)]
        big = assembler.assemble(big_members)["x"]
        assert big.shape[0] == 6
        for i, member in enumerate(big_members):
            assert np.array_equal(big[i], member.history)
        assert small.shape[0] == 1
