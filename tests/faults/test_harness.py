"""Unit tests for the fault-injection harness itself.

The harness must be deterministic (seeded probability rolls), strictly
ordered (faults consume in schedule order), scoped (a ``with inject``
block arms and disarms cleanly), and free when disabled (call sites read
one module attribute).
"""

import socket
import threading

import pytest

import repro.obs as obs
from repro import wire
from repro.errors import TransientWireError
from repro.testing import faults


class TestScheduleMechanics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSchedule().add("wire.send", "meteor")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "delay", "seconds": 0.0},
            {"kind": "drop", "times": 0},
            {"kind": "drop", "probability": 0.0},
            {"kind": "drop", "probability": 1.5},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            faults.FaultSchedule().add("wire.send", **kwargs)

    def test_faults_consume_in_order_and_count_down(self):
        schedule = (
            faults.FaultSchedule()
            .add("s", "drop", times=2)
            .add("s", "transient_eof")
        )
        assert schedule.pending() == 3
        assert schedule.take("s", {}).kind == "drop"
        assert schedule.take("s", {}).kind == "drop"
        assert schedule.take("s", {}).kind == "transient_eof"
        assert schedule.take("s", {}) is None
        assert schedule.pending() == 0
        assert [kind for _, kind, _ in schedule.fired] == [
            "drop", "drop", "transient_eof",
        ]

    def test_site_and_context_matching(self):
        schedule = faults.FaultSchedule().add(
            "shard.send", "drop", match={"cmd": "ping"}
        )
        assert schedule.take("shard.recv", {"cmd": "ping"}) is None
        assert schedule.take("shard.send", {"cmd": "flush"}) is None
        fault = schedule.take("shard.send", {"cmd": "ping", "shard": "s0"})
        assert fault is not None and fault.kind == "drop"

    def test_probability_rolls_are_seeded(self):
        def roll(seed):
            schedule = faults.FaultSchedule(seed=seed).add(
                "s", "drop", times=50, probability=0.5
            )
            return [schedule.take("s", {}) is not None for _ in range(50)]

        assert roll(3) == roll(3)  # reproducible
        hits = sum(roll(3))
        assert 0 < hits < 50  # and genuinely probabilistic

    def test_inject_is_scoped_and_restores_previous(self):
        outer = faults.FaultSchedule()
        inner = faults.FaultSchedule()
        assert not faults.active()
        with faults.inject(outer):
            assert faults._STATE.schedule is outer
            with faults.inject(inner):
                assert faults._STATE.schedule is inner
            assert faults._STATE.schedule is outer
        assert not faults.active()

    def test_check_is_inert_when_disarmed(self):
        assert faults.check("wire.send", cmd="anything") is None

    def test_thread_safe_consumption(self):
        schedule = faults.FaultSchedule().add("s", "drop", times=100)
        taken = []

        def worker():
            while True:
                fault = schedule.take("s", {})
                if fault is None:
                    return
                taken.append(fault)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(taken) == 100  # every firing consumed exactly once


class TestCheckActions:
    def test_delay_sleeps_then_proceeds(self):
        schedule = faults.FaultSchedule().add("s", "delay", seconds=0.05)
        with faults.inject(schedule):
            started = obs.now()
            assert faults.check("s") is None
            assert obs.now() - started >= 0.04

    def test_transient_eof_raises_typed(self):
        with faults.inject(faults.FaultSchedule().add("s", "transient_eof")):
            with pytest.raises(TransientWireError, match="injected"):
                faults.check("s")

    def test_corrupt_matches_bad_magic_error(self):
        with faults.inject(faults.FaultSchedule().add("s", "corrupt")):
            with pytest.raises(ValueError, match="bad magic"):
                faults.check("s")

    def test_drop_tells_the_caller_to_skip(self):
        with faults.inject(faults.FaultSchedule().add("s", "drop")):
            assert faults.check("s") == "drop"


class TestWireHooks:
    """The wire layer consults the harness on every send/recv when armed."""

    def test_dropped_send_writes_nothing(self):
        left, right = socket.socketpair()
        try:
            with faults.inject(faults.FaultSchedule().add("wire.send", "drop")):
                wire.send_message(left, {"cmd": "lost"})
                wire.send_message(left, {"cmd": "arrives"})
            right.settimeout(2.0)
            assert wire.recv_message(right)["cmd"] == "arrives"
        finally:
            left.close()
            right.close()

    def test_recv_transient_leaves_stream_usable(self):
        left, right = socket.socketpair()
        try:
            wire.send_message(left, {"n": 1})
            schedule = faults.FaultSchedule().add("wire.recv", "transient_eof")
            right.settimeout(2.0)
            with faults.inject(schedule):
                with pytest.raises(TransientWireError):
                    wire.recv_message(right)
                # Injected before any byte was consumed: a retry succeeds.
                assert wire.recv_message(right)["n"] == 1
        finally:
            left.close()
            right.close()
