"""Degradation drills: the cluster under injected faults and overload.

Each drill arms a deterministic fault (stall, transient, burst) and
asserts the *shape* of the degradation: typed errors for shed work,
deadlines honoured for healthy work, breakers trading timeouts for
fail-fast, and bit-parity for everything that was actually admitted.
"""

import time

import numpy as np
import pytest

import repro.obs as obs
from repro.cluster import (
    ClusterSpec,
    ServiceSpec,
    build_cluster,
    compare_cluster_to_unsharded,
    replay_cluster,
)
from repro.config import ModelConfig
from repro.errors import DeadlineExceeded, Overloaded, TransientWireError
from repro.serving import AdmissionPolicy, ForecastService
from repro.streaming import StreamingForecaster
from repro.testing import faults

INPUT_LENGTH = 16
HORIZON = 4
CHANNELS = 2

CONFIG = ModelConfig(
    input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=CHANNELS,
    patch_length=4, hidden_dim=16, dropout=0.0, n_heads=2, n_layers=1, seed=11,
)

SPEC = ServiceSpec(config=CONFIG, max_batch_size=16)

FAST_CLUSTER = ClusterSpec(
    n_shards=2, backend="process", request_timeout=30.0, heartbeat_timeout=2.0,
    retry_attempts=3, retry_base=0.01, retry_cap=0.05,
    breaker_threshold=2, breaker_reset=0.4,
)


def make_streams(n_tenants, rows, seed=0):
    rng = np.random.default_rng(seed)
    return {
        f"tenant-{i}": rng.normal(size=(rows, CHANNELS)).astype(np.float32)
        for i in range(n_tenants)
    }


@pytest.fixture
def cluster():
    built = build_cluster(SPEC, cluster=FAST_CLUSTER)
    rng = np.random.default_rng(5)
    for i in range(6):
        built.ingest(f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, CHANNELS)))
    yield built
    built.close()


def split_by_shard(cluster, tenants):
    victim = cluster.shard_for(tenants[0])
    on_victim = [t for t in tenants if cluster.shard_for(t) == victim]
    elsewhere = [t for t in tenants if cluster.shard_for(t) != victim]
    return victim, on_victim, elsewhere


def outcome(handle):
    try:
        handle.result()
        return "ok"
    except Exception as error:
        return type(error).__name__


class TestShedUnderBurst:
    """A burst beyond queue capacity sheds typed, never silently."""

    def test_local_burst_sheds_worst_class_first(self, rng):
        service = ForecastService(
            SPEC.build().model, max_batch_size=64,
            admission=AdmissionPolicy(queue_limit=8),
        )
        history = rng.normal(size=(INPUT_LENGTH, CHANNELS)).astype(np.float32)
        handles, refused = [], 0
        for i in range(20):
            priority = ("best_effort", "batch", "interactive")[i % 3]
            try:
                handles.append(service.submit(history + i, priority=priority))
            except Overloaded:
                refused += 1
        service.flush()
        outcomes = [outcome(h) for h in handles]
        shed = outcomes.count("Overloaded")
        assert refused + shed == 20 - 8  # burst minus capacity, all typed
        assert outcomes.count("ok") == 8
        assert service.stats.shed_overloaded == refused + shed
        # Every interactive submission survived: only lower classes paid.
        assert all(
            outcome(h) == "ok"
            for i, h in zip(range(20), handles)
            if ("best_effort", "batch", "interactive")[i % 3] == "interactive"
        ) or shed == 0

    def test_worker_side_shed_crosses_the_wire_typed(self):
        spec = ServiceSpec(config=CONFIG, max_batch_size=16, queue_limit=2)
        built = build_cluster(spec, cluster=FAST_CLUSTER)
        try:
            rng = np.random.default_rng(5)
            built.ingest("t", rng.normal(size=(INPUT_LENGTH, CHANNELS)))
            built.forecast("t")
            built.forecast("t")
            with pytest.raises(Overloaded, match="queue full"):
                built.forecast("t")  # shed in the worker process, typed here
            assert built.flush() == 2
        finally:
            built.close()


class TestStalledShard:
    def test_healthy_shards_complete_within_caller_deadline(self, cluster):
        tenants = [f"tenant-{i}" for i in range(6)]
        victim, on_victim, elsewhere = split_by_shard(cluster, tenants)
        assert elsewhere, "hash ring put every tenant on one shard"
        cluster.inject_stall(victim, seconds=2.0, count=4)
        started = obs.now()
        handles = cluster.forecast_all(tenants, timeout=0.8)
        elapsed = obs.now() - started
        assert elapsed < 1.6, "fan-out must not wait out the stall"
        for tenant in elsewhere:
            assert handles[tenant].result().shape == (HORIZON, CHANNELS)
        for tenant in on_victim:
            with pytest.raises(DeadlineExceeded):
                handles[tenant].result()

    def test_detect_failures_timeout_override_bounds_the_probe(self, cluster):
        tenants = [f"tenant-{i}" for i in range(6)]
        victim, _, _ = split_by_shard(cluster, tenants)
        cluster.inject_stall(victim, seconds=1.5, count=2)
        started = obs.now()
        suspects = cluster.detect_failures(timeout=0.2)
        elapsed = obs.now() - started
        assert suspects == [victim]
        assert elapsed < 1.0, "override must bound the probe below the stall"
        time.sleep(1.8)  # stall drains; stale replies are seq-drained
        time.sleep(FAST_CLUSTER.breaker_reset)
        assert cluster.detect_failures() == []


class TestBreakerTripAndRecover:
    def test_consecutive_stalls_trip_then_probe_recovers(self, cluster):
        tenants = [f"tenant-{i}" for i in range(6)]
        victim, on_victim, elsewhere = split_by_shard(cluster, tenants)
        cluster.inject_stall(victim, seconds=1.2, count=4)
        # Two deadline-bounded fan-outs time the victim out twice: trip.
        for _ in range(FAST_CLUSTER.breaker_threshold):
            cluster.forecast_all(on_victim[:1], timeout=0.15)
        state = cluster.breaker_states()[victim]
        assert state["state"] == "open"
        assert state["trips"] == 1
        # Open circuit: the victim's work sheds typed with zero wire I/O,
        # healthy shards keep serving.
        handles = cluster.forecast_all(tenants, timeout=0.5)
        for tenant in elsewhere:
            assert handles[tenant].result().shape == (HORIZON, CHANNELS)
        assert all(outcome(handles[t]) == "Overloaded" for t in on_victim)
        # Wait out the stall and the reset window: the half-open probe
        # succeeds and the breaker closes.
        time.sleep(1.5 + FAST_CLUSTER.breaker_reset)
        handles = cluster.forecast_all(tenants, timeout=10.0)
        assert all(outcome(h) == "ok" for h in handles.values())
        state = cluster.breaker_states()[victim]
        assert state["state"] == "closed"
        assert state["consecutive_failures"] == 0


class TestRetryMasksTransients:
    def test_send_transient_is_retried_invisibly(self, cluster):
        schedule = faults.FaultSchedule(seed=2).add(
            "shard.send", "transient_eof", times=1
        )
        with faults.inject(schedule):
            handle = cluster.forecast("tenant-0")
            cluster.flush()
        assert handle.result().shape == (HORIZON, CHANNELS)
        assert [kind for _, kind, _ in schedule.fired] == ["transient_eof"]
        assert schedule.pending() == 0

    def test_recv_transient_is_retried_invisibly(self, cluster):
        schedule = faults.FaultSchedule(seed=2).add(
            "shard.recv", "transient_eof", times=1
        )
        with faults.inject(schedule):
            handle = cluster.forecast("tenant-1")
            cluster.flush()
        assert handle.result().shape == (HORIZON, CHANNELS)
        assert schedule.pending() == 0

    def test_exhausted_retries_surface_the_transient(self, cluster):
        schedule = faults.FaultSchedule(seed=2).add(
            "shard.send", "transient_eof", times=FAST_CLUSTER.retry_attempts
        )
        with faults.inject(schedule):
            with pytest.raises(TransientWireError):
                cluster.forecast("tenant-0")
        # The stream itself was never touched: traffic flows afterwards.
        assert cluster.forecast("tenant-0").result().shape == (HORIZON, CHANNELS)

    def test_workers_keep_bit_parity_after_masked_transients(self, cluster):
        rng = np.random.default_rng(9)
        history_row = rng.normal(size=(1, CHANNELS)).astype(np.float32)
        baseline = cluster.forecast("tenant-2").result()
        schedule = faults.FaultSchedule(seed=4).add(
            "shard.send", "transient_eof", times=1
        ).add("shard.recv", "transient_eof", times=1)
        with faults.inject(schedule):
            retried = cluster.forecast("tenant-2").result()
        np.testing.assert_array_equal(baseline, retried)
        del history_row


class TestAdmittedTrafficParity:
    def test_admission_enabled_cluster_matches_unsharded_oracle(self):
        """Admission control must be invisible to admitted traffic: a
        bounded, deadline-defaulted process cluster forecasts bitwise what
        one uninterrupted in-process forecaster produces."""
        spec = ServiceSpec(
            config=CONFIG, max_batch_size=16, queue_limit=32, default_timeout=60.0
        )
        streams = make_streams(4, rows=INPUT_LENGTH + 4, seed=21)
        built = build_cluster(spec, cluster=FAST_CLUSTER)
        try:
            produced = replay_cluster(built, streams, warmup=INPUT_LENGTH)
        finally:
            built.close()
        reference = StreamingForecaster(spec.build())
        expected = replay_cluster(reference, streams, warmup=INPUT_LENGTH)
        report = compare_cluster_to_unsharded(produced, expected)
        assert report.bit_identical, report
